//! Translation of OQL into the monoid comprehension calculus — the paper's
//! §3 (coverage). Each OQL construct maps to a comprehension form:
//!
//! | OQL | calculus |
//! |-----|----------|
//! | `select e from x₁ in e₁, …  where p` | `bag{ e | x₁ ← e₁, …, p }` |
//! | `select distinct …` | `set{ … }` |
//! | `count(e)` | `sum{ 1 | x ← e }` |
//! | `sum(e)` / `avg(e)` | `sum{ x | x ← e }` (+ count for avg) |
//! | `max(e)` / `min(e)` | `max{ x | x ← e }` / `min{ … }` |
//! | `exists x in e: p` | `some{ p | x ← e }` |
//! | `for all x in e: p` | `all{ p | x ← e }` |
//! | `e₁ in e₂` | `some{ x = e₁ | x ← e₂ }` |
//! | `flatten(e)` | `K{ x | s ← e, x ← s }` |
//! | `listtoset(e)` | `set{ x | x ← e }` |
//! | `e₁ union e₂` | `e₁ ∪ e₂` / `e₁ ⊎ e₂` |
//! | `e₁ intersect e₂` | `set{ x | x ← e₁, some{ x = y | y ← e₂ } }` |
//! | `e₁ except e₂` | `set{ x | x ← e₁, ¬some{ x = y | y ← e₂ } }` |
//! | `… order by k` | `sortedbag` pairs, then projected to a list |
//! | `… group by l: k` | nested comprehension with `partition` |
//! | `struct(a: e, …)` | record construction |
//! | path expressions | projection (with object auto-deref) |
//!
//! **The C/I restriction and coercions.** The calculus rejects generators
//! whose source monoid is not ≤ the output monoid (`set` into `bag` most
//! prominently). Where OQL semantics require such an iteration — a plain
//! `select` over a set-valued field, `count` of a set — the translator
//! inserts the *explicit, deterministic* coercion `to_bag(·)` (well-defined
//! because this implementation's sets are canonically ordered; see
//! DESIGN.md §3). Everything else is the paper's translation verbatim.

use crate::ast::*;
use crate::error::OqlError;
use monoid_calculus::analysis::{Span, SpanMap};
use monoid_calculus::expr::{BinOp, Expr, Qual, UnOp};
use monoid_calculus::monoid::Monoid;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::typecheck::{TypeChecker, TypeEnv};
use monoid_calculus::types::{CollKind, Schema, Type};

/// The OQL → calculus translator, bound to a database schema.
pub struct Translator<'s> {
    schema: &'s Schema,
    /// `define`d names, already translated (inlined on use).
    defines: Vec<(Symbol, Expr)>,
    /// Source positions accumulated during translation — binder sites and
    /// translated sub-expressions, keyed for the static analyzer
    /// (`monoid_calculus::analysis::lint_with_spans`). Interior-mutable
    /// because translation methods take `&self`.
    spans: std::cell::RefCell<SpanMap>,
}

impl<'s> Translator<'s> {
    pub fn new(schema: &'s Schema) -> Translator<'s> {
        Translator { schema, defines: Vec::new(), spans: Default::default() }
    }

    /// The spans recorded since construction (or the last take), leaving
    /// an empty map behind.
    pub fn take_spans(&mut self) -> SpanMap {
        self.spans.take()
    }

    fn record_var(&self, v: Symbol, pos: AstPos) {
        if let AstPos(Some(p)) = pos {
            self.spans.borrow_mut().record_var(v, Span::new(p.offset, p.line, p.col));
        }
    }

    fn record_expr(&self, e: &Expr, pos: AstPos) {
        if let AstPos(Some(p)) = pos {
            self.spans.borrow_mut().record_expr(e, Span::new(p.offset, p.line, p.col));
        }
    }

    /// Translate a whole program; `define`s are translated in order and
    /// inlined into later queries.
    pub fn translate_program(&mut self, prog: &Program) -> Result<Expr, OqlError> {
        for (name, q) in &prog.defines {
            let e = self.trans(&TypeEnv::new(), q)?;
            self.defines.push((*name, e));
        }
        self.translate_query(&prog.query)
    }

    /// Translate a single query and type-check the result.
    pub fn translate_query(&mut self, q: &OqlExpr) -> Result<Expr, OqlError> {
        let e = self.trans(&TypeEnv::new(), q)?;
        // Validate: the translated query must type-check (this is where
        // illegal homomorphisms surface).
        self.type_of(&TypeEnv::new(), &e)?;
        Ok(e)
    }

    /// Translate and return the result type too.
    pub fn translate_typed(&mut self, q: &OqlExpr) -> Result<(Expr, Type), OqlError> {
        let e = self.trans(&TypeEnv::new(), q)?;
        let t = self.type_of(&TypeEnv::new(), &e)?;
        Ok((e, t))
    }

    fn type_of(&self, scope: &TypeEnv, e: &Expr) -> Result<Type, OqlError> {
        let mut tc = TypeChecker::with_schema(self.schema);
        Ok(tc.check(scope, e)?)
    }

    /// The element type of a collection-typed source, plus its kind.
    fn elem_of(&self, scope: &TypeEnv, src: &Expr) -> Result<(CollKind, Type), OqlError> {
        let t = self.type_of(scope, src)?;
        match t {
            Type::Coll(k, elem) => Ok((k, *elem)),
            Type::Vector(elem) => Ok((CollKind::List, *elem)),
            Type::Str => Ok((CollKind::List, Type::Str)),
            other => Err(OqlError::translate(format!(
                "`from`/quantifier source is not a collection: `{other}`"
            ))),
        }
    }

    /// Coerce `src` so it may legally generate inside an `out`-monoid
    /// comprehension: set-typed sources get an explicit `to_bag` when the
    /// output monoid is not idempotent.
    fn coerced_source(
        &self,
        scope: &TypeEnv,
        src: Expr,
        out: &Monoid,
    ) -> Result<(Expr, Type), OqlError> {
        let (kind, elem) = self.elem_of(scope, &src)?;
        if kind.monoid().hom_legal_to(out) {
            return Ok((src, elem));
        }
        if kind == CollKind::Set && !out.props().idempotent {
            // The documented deterministic escape hatch.
            return Ok((Expr::UnOp(UnOp::ToBag, Box::new(src)), elem));
        }
        Err(OqlError::translate(format!(
            "cannot iterate a {kind} source inside a {out} comprehension \
             (C/I restriction) and no coercion applies"
        )))
    }

    // -----------------------------------------------------------------
    // Expression translation.
    // -----------------------------------------------------------------

    fn trans(&self, scope: &TypeEnv, e: &OqlExpr) -> Result<Expr, OqlError> {
        match e {
            OqlExpr::IntLit(i) => Ok(Expr::int(*i)),
            OqlExpr::FloatLit(x) => Ok(Expr::float(*x)),
            OqlExpr::StrLit(s) => Ok(Expr::str(s)),
            OqlExpr::BoolLit(b) => Ok(Expr::bool(*b)),
            OqlExpr::Nil => Ok(Expr::null()),
            OqlExpr::Name(n) => {
                // A define inlines; anything else is a variable or a
                // persistent root, resolved by the type checker later.
                if let Some((_, def)) = self.defines.iter().find(|(d, _)| d == n) {
                    return Ok(def.clone());
                }
                Ok(Expr::Var(*n))
            }
            OqlExpr::Param(p) => Ok(Expr::Param(*p)),
            OqlExpr::Path(base, field) => Ok(self.trans(scope, base)?.proj(field.as_str())),
            OqlExpr::Index(base, idx) => {
                Ok(self.trans(scope, base)?.vec_index(self.trans(scope, idx)?))
            }
            OqlExpr::BinOp(op, a, b) => {
                let (a, b) = (self.trans(scope, a)?, self.trans(scope, b)?);
                let op = match op {
                    OqlBinOp::Add | OqlBinOp::Concat => BinOp::Add,
                    OqlBinOp::Sub => BinOp::Sub,
                    OqlBinOp::Mul => BinOp::Mul,
                    OqlBinOp::Div => BinOp::Div,
                    OqlBinOp::Mod => BinOp::Mod,
                    OqlBinOp::Eq => BinOp::Eq,
                    OqlBinOp::Ne => BinOp::Ne,
                    OqlBinOp::Lt => BinOp::Lt,
                    OqlBinOp::Le => BinOp::Le,
                    OqlBinOp::Gt => BinOp::Gt,
                    OqlBinOp::Ge => BinOp::Ge,
                    OqlBinOp::And => BinOp::And,
                    OqlBinOp::Or => BinOp::Or,
                };
                Ok(Expr::binop(op, a, b))
            }
            OqlExpr::Not(inner) => Ok(self.trans(scope, inner)?.not()),
            OqlExpr::Neg(inner) => {
                Ok(Expr::UnOp(UnOp::Neg, Box::new(self.trans(scope, inner)?)))
            }
            OqlExpr::In(item, coll) => {
                // e₁ in e₂  ⇒  some{ x = e₁ | x ← e₂ }
                let item = self.trans(scope, item)?;
                let coll = self.trans(scope, coll)?;
                let x = Symbol::fresh("x");
                Ok(Expr::comp(
                    Monoid::Some,
                    Expr::Var(x).eq(item),
                    vec![Qual::Gen(x, coll)],
                ))
            }
            OqlExpr::Like(s, pattern) => Ok(Expr::binop(
                BinOp::Like,
                self.trans(scope, s)?,
                Expr::str(pattern),
            )),
            OqlExpr::Agg(agg, arg) => self.trans_agg(scope, *agg, arg),
            OqlExpr::Quantified { quant, var, source, pred, var_pos } => {
                let src = self.trans(scope, source)?;
                let (_, elem) = self.elem_of(scope, &src)?;
                let inner_scope = scope.bind(*var, elem);
                let p = self.trans(&inner_scope, pred)?;
                let monoid = match quant {
                    Quant::Exists => Monoid::Some,
                    Quant::ForAll => Monoid::All,
                };
                self.record_var(*var, *var_pos);
                Ok(Expr::comp(monoid, p, vec![Qual::Gen(*var, src)]))
            }
            OqlExpr::Element(inner) => Ok(Expr::UnOp(
                UnOp::Element,
                Box::new(self.trans(scope, inner)?),
            )),
            OqlExpr::Flatten(inner) => self.trans_flatten(scope, inner),
            OqlExpr::ListToSet(inner) => {
                let src = self.trans(scope, inner)?;
                let x = Symbol::fresh("x");
                Ok(Expr::comp(Monoid::Set, Expr::Var(x), vec![Qual::Gen(x, src)]))
            }
            OqlExpr::Struct(fields) => {
                let fs = fields
                    .iter()
                    .map(|(n, fe)| Ok((*n, self.trans(scope, fe)?)))
                    .collect::<Result<Vec<_>, OqlError>>()?;
                Ok(Expr::Record(fs))
            }
            OqlExpr::Collection(cons, items) => {
                let its = items
                    .iter()
                    .map(|i| self.trans(scope, i))
                    .collect::<Result<Vec<_>, OqlError>>()?;
                Ok(match cons {
                    CollCons::Set => Expr::CollLit(Monoid::Set, its),
                    CollCons::Bag => Expr::CollLit(Monoid::Bag, its),
                    CollCons::List => Expr::CollLit(Monoid::List, its),
                    CollCons::Array => Expr::VecLit(its),
                })
            }
            OqlExpr::SetOp(op, a, b) => self.trans_setop(scope, *op, a, b),
            OqlExpr::Select {
                distinct, proj, from, filter, filter_pos, group_by, having, order_by, pos,
            } => {
                let e = self.trans_select(
                    scope, *distinct, proj, from, filter.as_deref().map(|f| (f, *filter_pos)),
                    group_by, having.as_deref(), order_by,
                )?;
                self.record_expr(&e, *pos);
                Ok(e)
            }
        }
    }

    fn trans_agg(&self, scope: &TypeEnv, agg: Agg, arg: &OqlExpr) -> Result<Expr, OqlError> {
        let src = self.trans(scope, arg)?;
        let x = Symbol::fresh("x");
        let make = |monoid: Monoid, head: Expr, src: Expr| {
            Expr::comp(monoid, head, vec![Qual::Gen(x, src)])
        };
        match agg {
            Agg::Count => {
                let (src, _) = self.coerced_source(scope, src, &Monoid::Sum)?;
                Ok(make(Monoid::Sum, Expr::int(1), src))
            }
            Agg::Sum => {
                let (src, _) = self.coerced_source(scope, src, &Monoid::Sum)?;
                Ok(make(Monoid::Sum, Expr::Var(x), src))
            }
            Agg::Avg => {
                // avg(e) = (sum{x|x←e} + 0.0) / sum{1|x←e}  — float division.
                let (src, _) = self.coerced_source(scope, src, &Monoid::Sum)?;
                let total = make(Monoid::Sum, Expr::Var(x), src.clone());
                let count = make(Monoid::Sum, Expr::int(1), src);
                Ok(total.add(Expr::float(0.0)).div(count))
            }
            Agg::Max => Ok(make(Monoid::Max, Expr::Var(x), src)),
            Agg::Min => Ok(make(Monoid::Min, Expr::Var(x), src)),
        }
    }

    fn trans_flatten(&self, scope: &TypeEnv, inner: &OqlExpr) -> Result<Expr, OqlError> {
        let src = self.trans(scope, inner)?;
        let (outer_kind, inner_ty) = self.elem_of(scope, &src)?;
        let inner_kind = match inner_ty {
            Type::Coll(k, _) => k,
            Type::Vector(_) | Type::Str => CollKind::List,
            other => {
                return Err(OqlError::translate(format!(
                    "flatten of a collection of non-collections: `{other}`"
                )))
            }
        };
        // The output kind is the join of the two kinds in the C/I order, so
        // both generators are legal: set ⊔ anything = set, bag ⊔ list = bag.
        let out = if outer_kind == CollKind::Set || inner_kind == CollKind::Set {
            Monoid::Set
        } else if outer_kind == CollKind::Bag || inner_kind == CollKind::Bag {
            Monoid::Bag
        } else {
            Monoid::List
        };
        let s = Symbol::fresh("s");
        let x = Symbol::fresh("x");
        Ok(Expr::comp(
            out,
            Expr::Var(x),
            vec![Qual::Gen(s, src), Qual::Gen(x, Expr::Var(s))],
        ))
    }

    fn trans_setop(
        &self,
        scope: &TypeEnv,
        op: SetOp,
        a: &OqlExpr,
        b: &OqlExpr,
    ) -> Result<Expr, OqlError> {
        let ea = self.trans(scope, a)?;
        let eb = self.trans(scope, b)?;
        let (ka, _) = self.elem_of(scope, &ea)?;
        let (kb, _) = self.elem_of(scope, &eb)?;
        match op {
            SetOp::Union => match (ka, kb) {
                (CollKind::Set, CollKind::Set) => Ok(Expr::merge(Monoid::Set, ea, eb)),
                (CollKind::List, CollKind::List) => Ok(Expr::merge(Monoid::List, ea, eb)),
                _ => {
                    // Mixed / bag union: additive, with explicit coercions.
                    let ba = if ka == CollKind::Bag {
                        ea
                    } else {
                        Expr::UnOp(UnOp::ToBag, Box::new(ea))
                    };
                    let bb = if kb == CollKind::Bag {
                        eb
                    } else {
                        Expr::UnOp(UnOp::ToBag, Box::new(eb))
                    };
                    Ok(Expr::merge(Monoid::Bag, ba, bb))
                }
            },
            SetOp::Intersect | SetOp::Except => {
                // set{ x | x ← a, [not] some{ x = y | y ← b } }
                let x = Symbol::fresh("x");
                let y = Symbol::fresh("y");
                let membership = Expr::comp(
                    Monoid::Some,
                    Expr::Var(y).eq(Expr::Var(x)),
                    vec![Qual::Gen(y, eb)],
                );
                let pred = if op == SetOp::Intersect { membership } else { membership.not() };
                Ok(Expr::comp(
                    Monoid::Set,
                    Expr::Var(x),
                    vec![Qual::Gen(x, ea), Qual::Pred(pred)],
                ))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn trans_select(
        &self,
        scope: &TypeEnv,
        distinct: bool,
        proj: &Projection,
        from: &[FromClause],
        filter: Option<(&OqlExpr, AstPos)>,
        group_by: &[GroupKey],
        having: Option<&OqlExpr>,
        order_by: &[OrderKey],
    ) -> Result<Expr, OqlError> {
        // The comprehension monoid before ordering: set for distinct,
        // bag otherwise.
        let base_monoid = if distinct { Monoid::Set } else { Monoid::Bag };

        // FROM clauses become generators (with coercion where needed);
        // the scope accumulates variable types left to right, because
        // later sources may reference earlier variables (dependent joins).
        let mut quals: Vec<Qual> = Vec::new();
        let mut inner_scope = scope.clone();
        for clause in from {
            let src = self.trans(&inner_scope, &clause.source)?;
            let (src, elem) = self.coerced_source(&inner_scope, src, &base_monoid)?;
            inner_scope = inner_scope.bind(clause.var, elem);
            self.record_var(clause.var, clause.var_pos);
            self.record_expr(&src, clause.var_pos);
            quals.push(Qual::Gen(clause.var, src));
        }
        if let Some((f, fpos)) = filter {
            let p = self.trans(&inner_scope, f)?;
            self.record_expr(&p, fpos);
            quals.push(Qual::Pred(p));
        }

        if !group_by.is_empty() {
            return self.trans_group_by(
                &inner_scope, base_monoid, proj, from, quals, group_by, having, order_by,
            );
        }
        if let Some(h) = having {
            // `having` without `group by` behaves as a second `where`.
            quals.push(Qual::Pred(self.trans(&inner_scope, h)?));
        }

        let head = self.trans_projection(&inner_scope, proj)?;

        if order_by.is_empty() {
            return Ok(Expr::Comp {
                monoid: base_monoid,
                head: Box::new(head),
                quals,
            });
        }
        self.trans_order_by(&inner_scope, distinct, head, quals, order_by)
    }

    fn trans_projection(
        &self,
        scope: &TypeEnv,
        proj: &Projection,
    ) -> Result<Expr, OqlError> {
        match proj {
            Projection::Expr(e) => self.trans(scope, e),
            Projection::Named(fields) => {
                let fs = fields
                    .iter()
                    .map(|(n, fe)| Ok((*n, self.trans(scope, fe)?)))
                    .collect::<Result<Vec<_>, OqlError>>()?;
                Ok(Expr::Record(fs))
            }
        }
    }

    /// `order by` (paper: the `sorted[f]` monoid). Sort keys pair with the
    /// head; the pairs comprehension uses `sortedbag` (duplicate-keeping,
    /// commutative) — or `sorted` under `distinct` — and a final list
    /// comprehension projects the heads out in key order.
    fn trans_order_by(
        &self,
        scope: &TypeEnv,
        distinct: bool,
        head: Expr,
        quals: Vec<Qual>,
        order_by: &[OrderKey],
    ) -> Result<Expr, OqlError> {
        // All-descending sorts are handled by sorting ascending and
        // reversing the final list; mixed asc/desc sorts invert each
        // descending *numeric* key with negation (a non-numeric key in a
        // mixed sort has no order-inverting expression in the calculus).
        let all_desc = !order_by.is_empty() && order_by.iter().all(|k| k.dir == Dir::Desc);
        let mut keys = Vec::with_capacity(order_by.len());
        for k in order_by {
            let ke = self.trans(scope, &k.expr)?;
            let ke = match k.dir {
                _ if all_desc => ke,
                Dir::Asc => ke,
                Dir::Desc => {
                    let t = self.type_of(scope, &ke)?;
                    if !matches!(t, Type::Int | Type::Float | Type::Null) {
                        return Err(OqlError::translate(
                            "`order by … desc` on a non-numeric key requires all \
                             keys descending (sort-and-reverse); mix with asc is \
                             unsupported",
                        ));
                    }
                    Expr::UnOp(UnOp::Neg, Box::new(ke))
                }
            };
            keys.push(ke);
        }
        let mut pair_items = keys;
        pair_items.push(head);
        let pair = Expr::Tuple(pair_items);
        let sort_monoid = if distinct { Monoid::Sorted } else { Monoid::SortedBag };
        let sorted_pairs = Expr::Comp {
            monoid: sort_monoid,
            head: Box::new(pair),
            quals,
        };
        let p = Symbol::fresh("p");
        let project = Expr::TupleProj(Box::new(Expr::Var(p)), order_by.len());
        let sorted_list = Expr::comp(
            Monoid::List,
            project,
            vec![Qual::Gen(p, sorted_pairs)],
        );
        Ok(if all_desc {
            Expr::UnOp(UnOp::Reverse, Box::new(sorted_list))
        } else {
            sorted_list
        })
    }

    /// `group by` — the nested-comprehension translation. For
    /// `select P from x in e where w group by l₁: k₁, …, lₙ: kₙ having h`:
    ///
    /// ```text
    /// set{ P' | g ← set{ ⟨l₁=k₁, …⟩ | x ← e, w },
    ///           l₁ ≡ g.l₁, …,
    ///           partition ≡ bag{ ⟨x=x, …⟩ | x ← e, w, k₁ = g.l₁, … },
    ///           h' }
    /// ```
    ///
    /// where `P'`/`h'` see the group labels and `partition` (a bag of
    /// records of the from-variables), as OQL prescribes. The result is a
    /// set: groups are unique by key.
    #[allow(clippy::too_many_arguments)]
    fn trans_group_by(
        &self,
        inner_scope: &TypeEnv,
        base_monoid: Monoid,
        proj: &Projection,
        from: &[FromClause],
        quals: Vec<Qual>,
        group_by: &[GroupKey],
        having: Option<&OqlExpr>,
        order_by: &[OrderKey],
    ) -> Result<Expr, OqlError> {
        let _ = base_monoid; // groups are always distinct by key
        // Key record ⟨l₁=k₁, …⟩ evaluated in the from-scope.
        let key_fields = group_by
            .iter()
            .map(|k| Ok((k.label, self.trans(inner_scope, &k.expr)?)))
            .collect::<Result<Vec<_>, OqlError>>()?;
        let key_record = Expr::Record(key_fields.clone());
        let key_set = Expr::Comp {
            monoid: Monoid::Set,
            head: Box::new(key_record),
            quals: quals.clone(),
        };
        let g = Symbol::fresh("g");

        // partition: re-run the from/where with the key equated to g's.
        let row_record = Expr::Record(
            from.iter()
                .map(|c| (c.var, Expr::Var(c.var)))
                .collect::<Vec<_>>(),
        );
        let mut part_quals = quals.clone();
        for (label, key_expr) in &key_fields {
            part_quals.push(Qual::Pred(
                key_expr.clone().eq(Expr::Var(g).proj(label.as_str())),
            ));
        }
        let partition = Expr::Comp {
            monoid: Monoid::Bag,
            head: Box::new(row_record),
            quals: part_quals,
        };

        // Outer comprehension: bind labels and partition, filter having,
        // project.
        let mut outer_quals: Vec<Qual> = vec![Qual::Gen(g, key_set)];
        for k in group_by {
            outer_quals.push(Qual::Bind(k.label, Expr::Var(g).proj(k.label.as_str())));
        }
        let partition_sym = Symbol::new("partition");
        outer_quals.push(Qual::Bind(partition_sym, partition));

        // The scope for head/having: labels + partition.
        let mut group_scope = TypeEnv::new();
        for (label, key_expr) in &key_fields {
            let t = self.type_of(inner_scope, key_expr)?;
            group_scope = group_scope.bind(*label, t);
        }
        let row_ty = Type::record(
            from.iter()
                .map(|c| {
                    let t = inner_scope.lookup(c.var).cloned().ok_or_else(|| {
                        OqlError::translate(format!("unknown from-variable `{}`", c.var))
                    })?;
                    Ok((c.var, t))
                })
                .collect::<Result<Vec<_>, OqlError>>()?,
        );
        group_scope = group_scope.bind(partition_sym, Type::bag(row_ty));

        if let Some(h) = having {
            outer_quals.push(Qual::Pred(self.trans(&group_scope, h)?));
        }
        let head = self.trans_projection(&group_scope, proj)?;

        if order_by.is_empty() {
            return Ok(Expr::Comp {
                monoid: Monoid::Set,
                head: Box::new(head),
                quals: outer_quals,
            });
        }
        self.trans_order_by(&group_scope, true, head, outer_quals, order_by)
    }
}

/// One-stop helper: parse and translate an OQL query against a schema.
pub fn compile(schema: &Schema, src: &str) -> Result<Expr, OqlError> {
    let prog = crate::parser::parse_program(src)?;
    let mut tr = Translator::new(schema);
    tr.translate_program(&prog)
}

/// Parse and translate, also returning the source spans recorded along
/// the way — binder sites and translated sub-expressions — for the
/// static analyzer (`monoid_calculus::analysis::lint_with_spans`).
pub fn compile_analyzed(schema: &Schema, src: &str) -> Result<(Expr, SpanMap), OqlError> {
    let prog = crate::parser::parse_program(src)?;
    let mut tr = Translator::new(schema);
    let e = tr.translate_program(&prog)?;
    Ok((e, tr.take_spans()))
}

/// Parse, translate, and report the result type.
pub fn compile_typed(schema: &Schema, src: &str) -> Result<(Expr, Type), OqlError> {
    let prog = crate::parser::parse_program(src)?;
    let mut tr = Translator::new(schema);
    for (name, q) in &prog.defines {
        let e = tr.trans(&TypeEnv::new(), q)?;
        tr.defines.push((*name, e));
    }
    tr.translate_typed(&prog.query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::types::{ClassDef, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_class(ClassDef {
            name: Symbol::new("SpanCity"),
            state: Type::record(vec![
                (Symbol::new("name"), Type::Str),
                (Symbol::new("hotels"), Type::list(Type::Str)),
            ]),
            extent: Some(Symbol::new("SpanCities")),
            superclass: None,
        });
        s
    }

    #[test]
    fn compile_analyzed_records_binder_spans() {
        let (e, spans) = compile_analyzed(
            &schema(),
            "select h from c in SpanCities, h in c.hotels where c.name = 'x'",
        )
        .unwrap();
        assert!(matches!(e, Expr::Comp { .. }));
        let c = spans.var_span(Symbol::new("c")).expect("span for `c`");
        let h = spans.var_span(Symbol::new("h")).expect("span for `h`");
        assert_eq!(c.line, 1);
        assert!(h.col > c.col, "`h` is bound to the right of `c`");
        // The whole translated select is anchored at the `select` keyword.
        assert_eq!(spans.expr_span(&e).expect("select span").col, 1);
    }

    #[test]
    fn quantifier_var_gets_a_span() {
        let mut s = schema();
        s.add_class(ClassDef {
            name: Symbol::new("SpanHotel"),
            state: Type::record(vec![(Symbol::new("rooms"), Type::list(Type::Int))]),
            extent: Some(Symbol::new("SpanHotels")),
            superclass: None,
        });
        let (_, spans) = compile_analyzed(
            &s,
            "select x from x in SpanHotels where exists r in x.rooms: r > 2",
        )
        .unwrap();
        assert!(spans.var_span(Symbol::new("r")).is_some(), "span for `r`");
    }
}
