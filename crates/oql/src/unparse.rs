//! Unparse an OQL AST back to source text.
//!
//! The printer produces text that re-parses to the *same* AST
//! (`parse(unparse(q)) == q`), which the round-trip tests verify over the
//! whole query battery. It parenthesizes conservatively: every operand of
//! a binary operator, quantifier source, or set operation that is itself
//! compound gets parentheses, which keeps the inverse property trivial to
//! maintain as the grammar grows.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a query back to OQL text.
pub fn unparse(e: &OqlExpr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

/// Render a whole program (defines + query).
pub fn unparse_program(p: &Program) -> String {
    let mut out = String::new();
    for (name, q) in &p.defines {
        let _ = write!(out, "define {name} as ");
        write_expr(&mut out, q);
        out.push_str("; ");
    }
    write_expr(&mut out, &p.query);
    out
}

fn atomic(e: &OqlExpr) -> bool {
    matches!(
        e,
        OqlExpr::IntLit(_)
            | OqlExpr::FloatLit(_)
            | OqlExpr::StrLit(_)
            | OqlExpr::BoolLit(_)
            | OqlExpr::Nil
            | OqlExpr::Name(_)
            | OqlExpr::Param(_)
            | OqlExpr::Path(..)
            | OqlExpr::Index(..)
            | OqlExpr::Agg(..)
            | OqlExpr::Element(_)
            | OqlExpr::Flatten(_)
            | OqlExpr::ListToSet(_)
            | OqlExpr::Struct(_)
            | OqlExpr::Collection(..)
    )
}

fn write_wrapped(out: &mut String, e: &OqlExpr) {
    if atomic(e) {
        write_expr(out, e);
    } else {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    }
}

fn write_expr(out: &mut String, e: &OqlExpr) {
    match e {
        OqlExpr::IntLit(i) => {
            let _ = write!(out, "{i}");
        }
        OqlExpr::FloatLit(x) => {
            // Keep a decimal point so it re-lexes as a float.
            if x.fract() == 0.0 && x.is_finite() {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        OqlExpr::StrLit(s) => {
            let escaped = s.replace('\\', "\\\\").replace('\'', "\\'");
            let _ = write!(out, "'{escaped}'");
        }
        OqlExpr::BoolLit(b) => {
            let _ = write!(out, "{b}");
        }
        OqlExpr::Nil => out.push_str("nil"),
        OqlExpr::Name(n) => {
            let _ = write!(out, "{n}");
        }
        // The symbol already carries its `$` prefix.
        OqlExpr::Param(p) => {
            let _ = write!(out, "{p}");
        }
        OqlExpr::Path(base, field) => {
            write_wrapped(out, base);
            let _ = write!(out, ".{field}");
        }
        OqlExpr::Index(base, idx) => {
            write_wrapped(out, base);
            out.push('[');
            write_expr(out, idx);
            out.push(']');
        }
        OqlExpr::BinOp(op, a, b) => {
            write_wrapped(out, a);
            let sym = match op {
                OqlBinOp::Add => "+",
                OqlBinOp::Sub => "-",
                OqlBinOp::Mul => "*",
                OqlBinOp::Div => "/",
                OqlBinOp::Mod => "mod",
                OqlBinOp::Eq => "=",
                OqlBinOp::Ne => "!=",
                OqlBinOp::Lt => "<",
                OqlBinOp::Le => "<=",
                OqlBinOp::Gt => ">",
                OqlBinOp::Ge => ">=",
                OqlBinOp::And => "and",
                OqlBinOp::Or => "or",
                OqlBinOp::Concat => "||",
            };
            let _ = write!(out, " {sym} ");
            write_wrapped(out, b);
        }
        OqlExpr::Not(inner) => {
            out.push_str("not ");
            write_wrapped(out, inner);
        }
        OqlExpr::Neg(inner) => {
            out.push('-');
            write_wrapped(out, inner);
        }
        OqlExpr::In(item, coll) => {
            write_wrapped(out, item);
            out.push_str(" in ");
            write_wrapped(out, coll);
        }
        OqlExpr::Like(s, pat) => {
            write_wrapped(out, s);
            let escaped = pat.replace('\\', "\\\\").replace('\'', "\\'");
            let _ = write!(out, " like '{escaped}'");
        }
        OqlExpr::Agg(agg, arg) => {
            let _ = write!(out, "{agg}(");
            write_expr(out, arg);
            out.push(')');
        }
        OqlExpr::Quantified { quant, var, source, pred, .. } => {
            let kw = match quant {
                Quant::Exists => "exists",
                Quant::ForAll => "for all",
            };
            let _ = write!(out, "{kw} {var} in ");
            write_wrapped(out, source);
            out.push_str(": ");
            write_wrapped(out, pred);
        }
        OqlExpr::Element(inner) => {
            out.push_str("element(");
            write_expr(out, inner);
            out.push(')');
        }
        OqlExpr::Flatten(inner) => {
            out.push_str("flatten(");
            write_expr(out, inner);
            out.push(')');
        }
        OqlExpr::ListToSet(inner) => {
            out.push_str("listtoset(");
            write_expr(out, inner);
            out.push(')');
        }
        OqlExpr::Struct(fields) => {
            out.push_str("struct(");
            for (i, (name, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{name}: ");
                write_expr(out, fe);
            }
            out.push(')');
        }
        OqlExpr::Collection(cons, items) => {
            let kw = match cons {
                CollCons::Set => "set",
                CollCons::Bag => "bag",
                CollCons::List => "list",
                CollCons::Array => "array",
            };
            let _ = write!(out, "{kw}(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item);
            }
            out.push(')');
        }
        OqlExpr::SetOp(op, a, b) => {
            write_wrapped(out, a);
            let kw = match op {
                SetOp::Union => "union",
                SetOp::Intersect => "intersect",
                SetOp::Except => "except",
            };
            let _ = write!(out, " {kw} ");
            write_wrapped(out, b);
        }
        OqlExpr::Select { distinct, proj, from, filter, group_by, having, order_by, .. } => {
            out.push_str("select ");
            if *distinct {
                out.push_str("distinct ");
            }
            match proj.as_ref() {
                Projection::Expr(e) => write_expr(out, e),
                Projection::Named(fields) => {
                    for (i, (name, fe)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_expr(out, fe);
                        let _ = write!(out, " as {name}");
                    }
                }
            }
            out.push_str(" from ");
            for (i, clause) in from.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} in ", clause.var);
                write_wrapped(out, &clause.source);
            }
            if let Some(f) = filter {
                out.push_str(" where ");
                write_expr(out, f);
            }
            if !group_by.is_empty() {
                out.push_str(" group by ");
                for (i, key) in group_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: ", key.label);
                    write_expr(out, &key.expr);
                }
            }
            if let Some(h) = having {
                out.push_str(" having ");
                write_expr(out, h);
            }
            if !order_by.is_empty() {
                out.push_str(" order by ");
                for (i, key) in order_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, &key.expr);
                    match key.dir {
                        Dir::Asc => out.push_str(" asc"),
                        Dir::Desc => out.push_str(" desc"),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};

    /// parse ∘ unparse ∘ parse = parse on a representative battery.
    #[test]
    fn roundtrip_battery() {
        let battery = [
            "select c.name from c in Cities where c.hotel# > 3",
            "select distinct r.bed# from h in Hotels, r in h.rooms",
            "count(Cities)",
            "avg(select e.salary from e in Employees)",
            "select h.name from h in Hotels where exists r in h.rooms: r.bed# = 3",
            "select h.name from h in Hotels where for all r in h.rooms: r.price < 100.0",
            "'pool' in h.facilities",
            "select c.name from c in Cities order by c.name desc",
            "select struct(b: b, n: count(partition)) from h in Hotels, r in h.rooms \
             group by b: r.bed# having count(partition) > 2",
            "set(1, 2) union set(2, 3) intersect set(2)",
            "flatten(select h.facilities from h in Hotels)",
            "select c.name from c in Cities where c.name like 'Port%'",
            "c.hotels[0].name",
            "select c.name as n, c.hotel# as k from c in Cities",
            "-(1 + 2) * 3 mod 4",
            "not (a = b) and ('x' || 'y') != 'xy'",
            "element(select c from c in Cities where c.name = 'Port\\'land')",
            "list()",
            "nil",
            "select c.name from c in Cities where c.name = $city",
            "select r.price from h in Hotels, r in h.rooms \
             where r.bed# >= $1 and r.price < $2",
            "exists h in Hotels: h.name = $name",
            "$1 + $2 * $scale",
        ];
        for src in battery {
            let ast1 = parse_query(src).unwrap_or_else(|e| panic!("parse `{src}`: {e}"));
            let printed = unparse(&ast1);
            let ast2 = parse_query(&printed)
                .unwrap_or_else(|e| panic!("reparse `{printed}` (from `{src}`): {e}"));
            assert_eq!(ast1, ast2, "round trip changed `{src}` → `{printed}`");
        }
    }

    #[test]
    fn roundtrip_program_with_defines() {
        let src = "define p as select c from c in Cities where c.name = 'Portland'; \
                   select h.name from c in p, h in c.hotels";
        let p1 = parse_program(src).unwrap();
        let printed = unparse_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn floats_stay_floats() {
        let ast = parse_query("1.0 + 2.5").unwrap();
        let printed = unparse(&ast);
        assert_eq!(parse_query(&printed).unwrap(), ast);
        assert!(printed.contains("1.0"));
    }
}
