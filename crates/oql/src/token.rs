//! Tokens of the OQL surface language (ODMG-93 subset).

use std::fmt;

/// A source position (byte offset, line, column), for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub offset: usize,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    /// A query parameter placeholder `$name` or `$1` (bare name, no `$`).
    Param(String),
    // keywords (case-insensitive in OQL)
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    In,
    As,
    And,
    Or,
    Not,
    Exists,
    For,
    All,
    Union,
    Intersect,
    Except,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Element,
    Flatten,
    ListToSet,
    Struct,
    Set,
    Bag,
    List,
    Array,
    True,
    False,
    Nil,
    Define,
    Like,
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Semicolon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Mod,
    /// String concatenation `||`.
    Concat,
    Eof,
}

impl Tok {
    /// Keyword lookup (OQL keywords are case-insensitive).
    pub fn keyword(word: &str) -> Option<Tok> {
        Some(match word.to_ascii_lowercase().as_str() {
            "select" => Tok::Select,
            "distinct" => Tok::Distinct,
            "from" => Tok::From,
            "where" => Tok::Where,
            "group" => Tok::Group,
            "by" => Tok::By,
            "having" => Tok::Having,
            "order" => Tok::Order,
            "asc" => Tok::Asc,
            "desc" => Tok::Desc,
            "in" => Tok::In,
            "as" => Tok::As,
            "and" => Tok::And,
            "or" => Tok::Or,
            "not" => Tok::Not,
            "exists" => Tok::Exists,
            "for" => Tok::For,
            "forall" => Tok::All, // `for all` also lexes as two tokens
            "all" => Tok::All,
            "union" => Tok::Union,
            "intersect" => Tok::Intersect,
            "except" => Tok::Except,
            "count" => Tok::Count,
            "sum" => Tok::Sum,
            "avg" => Tok::Avg,
            "min" => Tok::Min,
            "max" => Tok::Max,
            "element" => Tok::Element,
            "flatten" => Tok::Flatten,
            "listtoset" => Tok::ListToSet,
            "struct" => Tok::Struct,
            "set" => Tok::Set,
            "bag" => Tok::Bag,
            "list" => Tok::List,
            "array" => Tok::Array,
            "true" => Tok::True,
            "false" => Tok::False,
            "nil" | "null" => Tok::Nil,
            "define" => Tok::Define,
            "like" => Tok::Like,
            "mod" => Tok::Mod,
            _ => return None,
        })
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Param(s) => write!(f, "${s}"),
            Tok::Eof => write!(f, "<end of input>"),
            other => write!(f, "{}", format!("{other:?}").to_ascii_lowercase()),
        }
    }
}

/// A token plus where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub pos: Pos,
}
