//! Recursive-descent parser for the OQL subset.
//!
//! Operator precedence, loosest to tightest:
//! `or` < `and` < `not` < comparison / `in` / `like` <
//! `union`/`intersect`/`except` < `+ - ||` < `* / mod` < unary `-` <
//! postfix (`.field`, `[index]`).
//!
//! `select … from … where … group by … having … order by …` is an
//! expression and may appear anywhere an expression may (the paper: OQL
//! permits "subqueries at arbitrary points in query expressions").

use crate::ast::*;
use crate::error::OqlError;
use crate::lexer::lex;
use crate::token::{Pos, SpannedTok, Tok};
use monoid_calculus::symbol::Symbol;

/// Parse a full OQL program (defines + main query).
pub fn parse_program(src: &str) -> Result<Program, OqlError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0, depth: 0 };
    let prog = p.program()?;
    p.expect(Tok::Eof)?;
    Ok(prog)
}

/// Parse a single OQL query (no defines).
pub fn parse_query(src: &str) -> Result<OqlExpr, OqlError> {
    let prog = parse_program(src)?;
    if prog.defines.is_empty() {
        Ok(prog.query)
    } else {
        Err(OqlError::translate("use parse_program for queries with `define`"))
    }
}

/// Maximum expression nesting depth; deeper input gets a clean error
/// instead of exhausting the stack.
const MAX_DEPTH: usize = 32;

struct Parser {
    toks: Vec<SpannedTok>,
    at: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.at + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), OqlError> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(OqlError::parse(
                self.pos(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<Symbol, OqlError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(Symbol::new(&name))
            }
            other => Err(OqlError::parse(
                self.pos(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, OqlError> {
        let mut defines = Vec::new();
        while self.eat(Tok::Define) {
            let name = self.ident()?;
            self.expect(Tok::As)?;
            let q = self.expr()?;
            self.expect(Tok::Semicolon)?;
            defines.push((name, q));
        }
        let query = self.expr()?;
        // Allow a trailing semicolon on the main query.
        self.eat(Tok::Semicolon);
        Ok(Program { defines, query })
    }

    // ---- precedence climb ----

    fn expr(&mut self) -> Result<OqlExpr, OqlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(OqlError::parse(
                self.pos(),
                format!("expression nesting exceeds {MAX_DEPTH} levels"),
            ));
        }
        let r = self.or();
        self.depth -= 1;
        r
    }

    fn or(&mut self) -> Result<OqlExpr, OqlError> {
        let mut lhs = self.and()?;
        while self.eat(Tok::Or) {
            let rhs = self.and()?;
            lhs = OqlExpr::BinOp(OqlBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<OqlExpr, OqlError> {
        let mut lhs = self.not()?;
        while self.eat(Tok::And) {
            let rhs = self.not()?;
            lhs = OqlExpr::BinOp(OqlBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not(&mut self) -> Result<OqlExpr, OqlError> {
        if self.eat(Tok::Not) {
            return Ok(OqlExpr::Not(Box::new(self.not()?)));
        }
        // Quantifiers: `exists x in e: p` / `for all x in e: p`. Note that
        // `exists(e)` (non-emptiness) is instead parsed below when the next
        // token is `(`.
        if *self.peek() == Tok::Exists && matches!(self.peek2(), Tok::Ident(_)) {
            self.bump();
            let var_pos = self.pos();
            let var = self.ident()?;
            self.expect(Tok::In)?;
            let source = self.cmp()?;
            self.expect(Tok::Colon)?;
            let pred = self.not()?;
            return Ok(OqlExpr::Quantified {
                quant: Quant::Exists,
                var,
                source: Box::new(source),
                pred: Box::new(pred),
                var_pos: var_pos.into(),
            });
        }
        if *self.peek() == Tok::For {
            self.bump();
            self.expect(Tok::All)?;
            let var_pos = self.pos();
            let var = self.ident()?;
            self.expect(Tok::In)?;
            let source = self.cmp()?;
            self.expect(Tok::Colon)?;
            let pred = self.not()?;
            return Ok(OqlExpr::Quantified {
                quant: Quant::ForAll,
                var,
                source: Box::new(source),
                pred: Box::new(pred),
                var_pos: var_pos.into(),
            });
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<OqlExpr, OqlError> {
        let lhs = self.setop()?;
        let op = match self.peek() {
            Tok::Eq => OqlBinOp::Eq,
            Tok::Ne => OqlBinOp::Ne,
            Tok::Lt => OqlBinOp::Lt,
            Tok::Le => OqlBinOp::Le,
            Tok::Gt => OqlBinOp::Gt,
            Tok::Ge => OqlBinOp::Ge,
            Tok::In => {
                self.bump();
                let rhs = self.setop()?;
                return Ok(OqlExpr::In(Box::new(lhs), Box::new(rhs)));
            }
            Tok::Like => {
                self.bump();
                match self.bump() {
                    Tok::Str(pat) => return Ok(OqlExpr::Like(Box::new(lhs), pat)),
                    other => {
                        return Err(OqlError::parse(
                            self.pos(),
                            format!("expected string pattern after `like`, found {other}"),
                        ))
                    }
                }
            }
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.setop()?;
        Ok(OqlExpr::BinOp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn setop(&mut self) -> Result<OqlExpr, OqlError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Union => SetOp::Union,
                Tok::Intersect => SetOp::Intersect,
                Tok::Except => SetOp::Except,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = OqlExpr::SetOp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn additive(&mut self) -> Result<OqlExpr, OqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => OqlBinOp::Add,
                Tok::Minus => OqlBinOp::Sub,
                Tok::Concat => OqlBinOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = OqlExpr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<OqlExpr, OqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => OqlBinOp::Mul,
                Tok::Slash => OqlBinOp::Div,
                Tok::Mod => OqlBinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = OqlExpr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<OqlExpr, OqlError> {
        if self.eat(Tok::Minus) {
            return Ok(OqlExpr::Neg(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<OqlExpr, OqlError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(Tok::Dot) {
                let field = self.ident()?;
                e = OqlExpr::Path(Box::new(e), field);
            } else if self.eat(Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(Tok::RBracket)?;
                e = OqlExpr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    fn call_arg(&mut self) -> Result<OqlExpr, OqlError> {
        self.expect(Tok::LParen)?;
        let e = self.expr()?;
        self.expect(Tok::RParen)?;
        Ok(e)
    }

    fn primary(&mut self) -> Result<OqlExpr, OqlError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(OqlExpr::IntLit(i))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(OqlExpr::FloatLit(x))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(OqlExpr::StrLit(s))
            }
            Tok::True => {
                self.bump();
                Ok(OqlExpr::BoolLit(true))
            }
            Tok::False => {
                self.bump();
                Ok(OqlExpr::BoolLit(false))
            }
            Tok::Nil => {
                self.bump();
                Ok(OqlExpr::Nil)
            }
            Tok::Count => {
                self.bump();
                Ok(OqlExpr::Agg(Agg::Count, Box::new(self.call_arg()?)))
            }
            Tok::Sum => {
                self.bump();
                Ok(OqlExpr::Agg(Agg::Sum, Box::new(self.call_arg()?)))
            }
            Tok::Avg => {
                self.bump();
                Ok(OqlExpr::Agg(Agg::Avg, Box::new(self.call_arg()?)))
            }
            Tok::Min => {
                self.bump();
                Ok(OqlExpr::Agg(Agg::Min, Box::new(self.call_arg()?)))
            }
            Tok::Max => {
                self.bump();
                Ok(OqlExpr::Agg(Agg::Max, Box::new(self.call_arg()?)))
            }
            Tok::Element => {
                self.bump();
                Ok(OqlExpr::Element(Box::new(self.call_arg()?)))
            }
            Tok::Flatten => {
                self.bump();
                Ok(OqlExpr::Flatten(Box::new(self.call_arg()?)))
            }
            Tok::ListToSet => {
                self.bump();
                Ok(OqlExpr::ListToSet(Box::new(self.call_arg()?)))
            }
            Tok::Exists => {
                // `exists(e)`: non-emptiness of a collection.
                self.bump();
                Ok(OqlExpr::Agg(Agg::Count, Box::new(self.call_arg()?)))
                    .map(|count| {
                        OqlExpr::BinOp(
                            OqlBinOp::Gt,
                            Box::new(count),
                            Box::new(OqlExpr::IntLit(0)),
                        )
                    })
            }
            Tok::Struct => {
                self.bump();
                self.expect(Tok::LParen)?;
                let mut fields = Vec::new();
                loop {
                    let label = self.ident()?;
                    self.expect(Tok::Colon)?;
                    let value = self.expr()?;
                    fields.push((label, value));
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(OqlExpr::Struct(fields))
            }
            Tok::Set | Tok::Bag | Tok::List | Tok::Array => {
                let cons = match self.bump() {
                    Tok::Set => CollCons::Set,
                    Tok::Bag => CollCons::Bag,
                    Tok::List => CollCons::List,
                    Tok::Array => CollCons::Array,
                    _ => unreachable!(),
                };
                self.expect(Tok::LParen)?;
                let mut items = Vec::new();
                if *self.peek() != Tok::RParen {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(OqlExpr::Collection(cons, items))
            }
            Tok::Select => self.select(),
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(OqlExpr::Name(Symbol::new(&name)))
            }
            Tok::Param(name) => {
                self.bump();
                Ok(OqlExpr::Param(Symbol::new(&format!("${name}"))))
            }
            other => Err(OqlError::parse(
                self.pos(),
                format!("expected an expression, found {other}"),
            )),
        }
    }

    // ---- select ----

    fn select(&mut self) -> Result<OqlExpr, OqlError> {
        let pos = self.pos();
        self.expect(Tok::Select)?;
        let distinct = self.eat(Tok::Distinct);
        let proj = self.projection()?;
        self.expect(Tok::From)?;
        let mut from = vec![self.parse_from_clause()?];
        while self.eat(Tok::Comma) {
            from.push(self.parse_from_clause()?);
        }
        let (filter, filter_pos) = if self.eat(Tok::Where) {
            let fp = self.pos();
            (Some(Box::new(self.expr()?)), fp.into())
        } else {
            (None, AstPos::default())
        };
        let mut group_by = Vec::new();
        if self.eat(Tok::Group) {
            self.expect(Tok::By)?;
            loop {
                let label = self.ident()?;
                self.expect(Tok::Colon)?;
                let expr = self.expr()?;
                group_by.push(GroupKey { label, expr });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat(Tok::Having) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat(Tok::Order) {
            self.expect(Tok::By)?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat(Tok::Desc) {
                    Dir::Desc
                } else {
                    self.eat(Tok::Asc);
                    Dir::Asc
                };
                order_by.push(OrderKey { expr, dir });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        Ok(OqlExpr::Select {
            distinct,
            proj: Box::new(proj),
            from,
            filter,
            filter_pos,
            group_by,
            having,
            order_by,
            pos: pos.into(),
        })
    }

    fn projection(&mut self) -> Result<Projection, OqlError> {
        let mut items: Vec<(Option<Symbol>, OqlExpr)> = Vec::new();
        loop {
            let e = self.expr()?;
            let label = if self.eat(Tok::As) { Some(self.ident()?) } else { None };
            items.push((label, e));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        if items.len() == 1 && items[0].0.is_none() {
            return Ok(Projection::Expr(items.pop().expect("one item").1));
        }
        // Multi-item (or labelled) projection: a struct. Unlabelled items
        // take their field/variable name, as OQL does.
        let named = items
            .into_iter()
            .map(|(label, e)| {
                let label = match label {
                    Some(l) => l,
                    None => match &e {
                        OqlExpr::Path(_, f) => *f,
                        OqlExpr::Name(n) => *n,
                        _ => {
                            return Err(OqlError::parse(
                                self.pos(),
                                "projection item needs `as <name>`",
                            ))
                        }
                    },
                };
                Ok((label, e))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Projection::Named(named))
    }

    fn parse_from_clause(&mut self) -> Result<FromClause, OqlError> {
        // `x in e` — one-token lookahead distinguishes it from `e [as] x`.
        if let Tok::Ident(_) = self.peek() {
            if *self.peek2() == Tok::In {
                let var_pos = self.pos();
                let var = self.ident()?;
                self.expect(Tok::In)?;
                let source = self.expr()?;
                return Ok(FromClause { var, source, var_pos: var_pos.into() });
            }
        }
        let source = self.expr()?;
        self.eat(Tok::As);
        let var_pos = self.pos();
        let var = self.ident()?;
        Ok(FromClause { var, source, var_pos: var_pos.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse_query("select c.name from c in Cities where c.name = 'Portland'")
            .unwrap();
        let OqlExpr::Select { distinct, from, filter, .. } = q else {
            panic!("expected select");
        };
        assert!(!distinct);
        assert_eq!(from.len(), 1);
        assert_eq!(from[0].var, Symbol::new("c"));
        assert!(filter.is_some());
    }

    #[test]
    fn parses_sql_style_from() {
        let q = parse_query("select distinct h.name from Hotels h").unwrap();
        let OqlExpr::Select { distinct, from, .. } = q else { panic!() };
        assert!(distinct);
        assert_eq!(from[0].var, Symbol::new("h"));
        assert_eq!(from[0].source, OqlExpr::name("Hotels"));
    }

    #[test]
    fn parses_nested_select_in_from() {
        let q = parse_query(
            "select h.name from h in (select c.hotels from c in Cities) , r in h.rooms",
        );
        // h ranges over a bag of lists here — nonsense semantically but
        // fine syntactically; translation will flag it.
        assert!(q.is_ok());
    }

    #[test]
    fn parses_quantifiers() {
        let q = parse_query("exists r in h.rooms: r.bed# = 3").unwrap();
        assert!(matches!(q, OqlExpr::Quantified { quant: Quant::Exists, .. }));
        let q = parse_query("for all r in h.rooms: r.price < 100").unwrap();
        assert!(matches!(q, OqlExpr::Quantified { quant: Quant::ForAll, .. }));
    }

    #[test]
    fn parses_aggregates_and_calls() {
        let q = parse_query("sum(select r.price from r in h.rooms)").unwrap();
        assert!(matches!(q, OqlExpr::Agg(Agg::Sum, _)));
        assert!(matches!(
            parse_query("count(Cities)").unwrap(),
            OqlExpr::Agg(Agg::Count, _)
        ));
        assert!(matches!(parse_query("element(Cities)").unwrap(), OqlExpr::Element(_)));
    }

    #[test]
    fn precedence_and_parens() {
        // a + b * c parses as a + (b * c)
        let q = parse_query("1 + 2 * 3").unwrap();
        let OqlExpr::BinOp(OqlBinOp::Add, _, rhs) = q else { panic!() };
        assert!(matches!(*rhs, OqlExpr::BinOp(OqlBinOp::Mul, _, _)));
        // not binds tighter than and
        let q = parse_query("not true and false").unwrap();
        assert!(matches!(q, OqlExpr::BinOp(OqlBinOp::And, _, _)));
    }

    #[test]
    fn parses_struct_and_collections() {
        let q = parse_query("struct(name: c.name, n: 3)").unwrap();
        assert!(matches!(q, OqlExpr::Struct(ref fs) if fs.len() == 2));
        let q = parse_query("set(1, 2, 3)").unwrap();
        assert!(matches!(q, OqlExpr::Collection(CollCons::Set, ref items) if items.len() == 3));
        let q = parse_query("list()").unwrap();
        assert!(matches!(q, OqlExpr::Collection(CollCons::List, ref items) if items.is_empty()));
    }

    #[test]
    fn parses_group_by_and_order_by() {
        let q = parse_query(
            "select struct(city: cn, n: count(partition)) \
             from h in Hotels group by cn: h.name having count(partition) > 1 \
             order by cn desc",
        )
        .unwrap();
        let OqlExpr::Select { group_by, having, order_by, .. } = q else { panic!() };
        assert_eq!(group_by.len(), 1);
        assert!(having.is_some());
        assert_eq!(order_by.len(), 1);
        assert_eq!(order_by[0].dir, Dir::Desc);
    }

    #[test]
    fn parses_defines() {
        let p = parse_program(
            "define portland as select c from c in Cities where c.name = 'Portland'; \
             select h.name from c in portland, h in c.hotels",
        )
        .unwrap();
        assert_eq!(p.defines.len(), 1);
        assert_eq!(p.defines[0].0, Symbol::new("portland"));
    }

    #[test]
    fn parses_membership_and_setops() {
        let q = parse_query("'pool' in h.facilities").unwrap();
        assert!(matches!(q, OqlExpr::In(_, _)));
        let q = parse_query("a union b intersect c").unwrap();
        assert!(matches!(q, OqlExpr::SetOp(SetOp::Intersect, _, _)));
    }

    #[test]
    fn parse_error_has_position() {
        let err = parse_query("select from").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn parses_indexing() {
        let q = parse_query("c.hotels[0]").unwrap();
        assert!(matches!(q, OqlExpr::Index(_, _)));
    }

    #[test]
    fn parses_like() {
        let q = parse_query("c.name like 'Port%'").unwrap();
        assert!(matches!(q, OqlExpr::Like(_, ref p) if p == "Port%"));
    }

    #[test]
    fn parses_parameters() {
        let q = parse_query("select c.name from c in Cities where c.name = $city")
            .unwrap();
        let OqlExpr::Select { filter: Some(f), .. } = q else { panic!() };
        let OqlExpr::BinOp(OqlBinOp::Eq, _, rhs) = *f else { panic!() };
        assert_eq!(*rhs, OqlExpr::Param(Symbol::new("$city")));
        // Positional form.
        let q = parse_query("$1 + $2").unwrap();
        assert!(matches!(q, OqlExpr::BinOp(OqlBinOp::Add, _, _)));
    }
}
