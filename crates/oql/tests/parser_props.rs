//! Robustness properties of the OQL front end: the lexer and parser never
//! panic on arbitrary input, errors carry positions, and structured
//! round-trips hold for the pieces that have inverses.

use monoid_oql::lexer::lex;
use monoid_oql::parser::{parse_program, parse_query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// No input — printable ASCII, quotes, operators, whatever — panics
    /// the lexer or parser.
    #[test]
    fn never_panics(src in "[ -~\\n\\t]{0,80}") {
        let _ = parse_program(&src);
    }

    /// Unicode in strings is preserved and does not break lexing.
    #[test]
    fn unicode_strings_lex(s in "[a-zé√ü東]{0,10}") {
        let src = format!("'{s}'");
        let toks = lex(&src).unwrap();
        match &toks[0].tok {
            monoid_oql::token::Tok::Str(got) => prop_assert_eq!(got, &s),
            other => prop_assert!(false, "expected string, got {other:?}"),
        }
    }

    /// Integer literals round-trip through the lexer.
    #[test]
    fn integers_roundtrip(n in 0i64..i64::MAX) {
        let toks = lex(&n.to_string()).unwrap();
        prop_assert_eq!(&toks[0].tok, &monoid_oql::token::Tok::Int(n));
    }

    /// Identifier-shaped inputs parse as names (or keywords).
    #[test]
    fn identifiers_parse(name in "[a-zA-Z_][a-zA-Z0-9_]{0,10}") {
        // Skip actual keywords.
        if monoid_oql::token::Tok::keyword(&name).is_some() {
            return Ok(());
        }
        let q = parse_query(&name).unwrap();
        prop_assert!(matches!(q, monoid_oql::ast::OqlExpr::Name(_)));
    }

    /// Keywords are case-insensitive throughout.
    #[test]
    fn keyword_case_insensitivity(upper in any::<bool>()) {
        let kw = if upper { "SELECT C.NAME FROM C IN Cities" } else { "select c.name from c in Cities" };
        // Note: identifiers keep their case; only keywords fold.
        let q = parse_query(kw);
        prop_assert!(q.is_ok());
    }

    /// Arithmetic expressions over integer literals parse and associate
    /// left; no stack overflow at moderate depth.
    #[test]
    fn arithmetic_chains_parse(terms in prop::collection::vec(0i64..100, 1..40)) {
        let src = terms
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join(" + ");
        let q = parse_query(&src);
        prop_assert!(q.is_ok());
    }

    /// Deeply parenthesized expressions parse up to the documented depth
    /// limit, and fail with a clean error (never a stack overflow) beyond
    /// it.
    #[test]
    fn nested_parens_parse(depth in 0usize..200) {
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let r = parse_query(&src);
        if depth < 30 {
            prop_assert!(r.is_ok(), "depth {depth} should parse: {r:?}");
        }
        // Beyond the limit: a clean Err, not a crash (reaching this line
        // at all is the property).
        if depth >= 32 {
            prop_assert!(r.is_err());
        }
    }

    /// Errors report 1-based line/column positions within bounds.
    #[test]
    fn error_positions_in_bounds(src in "[a-z@#$ ]{1,40}") {
        if let Err(e) = parse_program(&src) {
            let msg = e.to_string();
            // Position errors contain "line:col"; both at least 1.
            if let Some(rest) = msg.split(" at ").nth(1) {
                if let Some(pos) = rest.split(':').next() {
                    if let Ok(line) = pos.parse::<u32>() {
                        prop_assert!(line >= 1);
                    }
                }
            }
        }
    }
}

/// Deterministic: parsing the same source twice gives identical ASTs.
#[test]
fn parsing_is_deterministic() {
    let src = "select struct(a: c.name, b: count(partition)) \
               from c in Cities, h in c.hotels group by g: c.name \
               having count(partition) > 1 order by g";
    assert_eq!(parse_query(src).unwrap(), parse_query(src).unwrap());
}
