//! End-to-end OQL coverage (experiment E4): every OQL feature the paper's
//! §3 claims coverage for is parsed, translated to the calculus,
//! type-checked against the travel schema, normalized, and evaluated on a
//! generated travel database — with the normalized form required to agree
//! with the direct evaluation (the normalizer is meaning-preserving).

use monoid_calculus::normalize::normalize;
use monoid_calculus::pretty::pretty;
use monoid_calculus::value::Value;
use monoid_oql::{compile, compile_typed};
use monoid_store::travel::{self, TravelScale};
use monoid_store::Database;

fn db() -> Database {
    travel::generate(TravelScale::tiny(), 42)
}

/// Compile, check, evaluate directly AND normalized; the two must agree.
fn run(db: &mut Database, src: &str) -> Value {
    let q = compile(db.schema(), src).unwrap_or_else(|e| panic!("compile `{src}`: {e}"));
    db.check(&q).unwrap_or_else(|e| panic!("typecheck `{src}`: {e}"));
    let direct = db
        .query(&q)
        .unwrap_or_else(|e| panic!("eval `{src}` ({}): {e}", pretty(&q)));
    let n = normalize(&q);
    let normalized = db
        .query(&n)
        .unwrap_or_else(|e| panic!("eval normalized `{src}` ({}): {e}", pretty(&n)));
    assert_eq!(
        direct, normalized,
        "normalization changed the meaning of `{src}`\n  calculus: {}\n  normal:   {}",
        pretty(&q),
        pretty(&n)
    );
    direct
}

#[test]
fn simple_select_is_a_bag() {
    let mut db = db();
    let v = run(&mut db, "select c.name from c in Cities");
    assert!(matches!(v, Value::Bag(_)));
    assert_eq!(v.len().unwrap(), TravelScale::tiny().cities);
}

#[test]
fn select_distinct_is_a_set() {
    let mut db = db();
    let v = run(&mut db, "select distinct r.bed# from h in Hotels, r in h.rooms");
    assert!(matches!(v, Value::Set(_)));
    // bed# ∈ 1..=4
    for bed in v.elements().unwrap() {
        let b = bed.as_int().unwrap();
        assert!((1..=4).contains(&b));
    }
}

/// The paper's §3.1 query: hotel names in Portland with 3-bed rooms.
#[test]
fn portland_three_bed_rooms() {
    let mut db = db();
    let v = run(
        &mut db,
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = 'Portland' and r.bed# = 3",
    );
    assert!(matches!(v, Value::Bag(_)));
    // Every reported hotel is a Portland hotel.
    for name in v.elements().unwrap() {
        let Value::Str(s) = name else { panic!() };
        assert!(s.starts_with("hotel_0_"), "{s} should be a city-0 hotel");
    }
}

/// The paper's nested form of the same query — a subquery in `from` —
/// must give the same answer as the flat form.
#[test]
fn nested_from_subquery_equals_flat() {
    let mut db = db();
    let nested = run(
        &mut db,
        "select h.name \
         from h in (select h2 from c in Cities, h2 in c.hotels \
                    where c.name = 'Portland'), \
              r in h.rooms \
         where r.bed# = 3",
    );
    let flat = run(
        &mut db,
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = 'Portland' and r.bed# = 3",
    );
    assert_eq!(nested, flat);
}

#[test]
fn exists_quantifier() {
    let mut db = db();
    let v = run(
        &mut db,
        "select h.name from h in Hotels \
         where exists r in h.rooms: r.bed# = 3",
    );
    assert!(matches!(v, Value::Bag(_)));
    // Cross-check against count of hotels with such a room computed per
    // hotel via count().
    let total = run(
        &mut db,
        "count(select h from h in Hotels \
         where count(select r from r in h.rooms where r.bed# = 3) > 0)",
    );
    assert_eq!(Value::Int(v.len().unwrap() as i64), total);
}

#[test]
fn forall_quantifier() {
    let mut db = db();
    let v = run(
        &mut db,
        "select h.name from h in Hotels \
         where for all r in h.rooms: r.price < 10000",
    );
    // All generated prices are below 400, so every hotel qualifies.
    assert_eq!(v.len().unwrap(), db.extent_len("Hotels"));
}

#[test]
fn aggregates() {
    let mut db = db();
    let count = run(&mut db, "count(Cities)");
    assert_eq!(count, Value::Int(TravelScale::tiny().cities as i64));

    let max_salary = run(&mut db, "max(select e.salary from e in Employees)");
    let min_salary = run(&mut db, "min(select e.salary from e in Employees)");
    assert!(max_salary >= min_salary);

    let total = run(&mut db, "sum(select e.salary from e in Employees)");
    let avg = run(&mut db, "avg(select e.salary from e in Employees)");
    let n = db.extent_len("Employees") as f64;
    let Value::Int(t) = total else { panic!("sum is an int") };
    let Value::Float(a) = avg else { panic!("avg is a float") };
    assert!((a - t as f64 / n).abs() < 1e-9);
}

#[test]
fn count_of_a_set_valued_field_coerces() {
    let mut db = db();
    // facilities is a set; count must insert to_bag and succeed.
    let v = run(
        &mut db,
        "sum(select count(h.facilities) from h in Hotels)",
    );
    assert!(matches!(v, Value::Int(_)));
}

#[test]
fn membership() {
    let mut db = db();
    let v = run(
        &mut db,
        "select h.name from h in Hotels where 'pool' in h.facilities",
    );
    assert!(matches!(v, Value::Bag(_)));
}

#[test]
fn struct_projection_and_named_projection() {
    let mut db = db();
    let a = run(
        &mut db,
        "select struct(name: c.name, n: c.hotel#) from c in Cities",
    );
    let b = run(&mut db, "select c.name as name, c.hotel# as n from c in Cities");
    assert_eq!(a, b);
    // Unlabelled multi-projection takes field names.
    let c = run(&mut db, "select c.name, c.hotel# from c in Cities");
    // Field `hotel#` keeps its name; `name` keeps its name.
    let first = c.elements().unwrap().into_iter().next().unwrap();
    assert!(first.field(monoid_calculus::symbol::Symbol::new("name")).is_some());
    assert!(first.field(monoid_calculus::symbol::Symbol::new("hotel#")).is_some());
}

#[test]
fn order_by_sorts() {
    let mut db = db();
    let v = run(&mut db, "select c.name from c in Cities order by c.name");
    let Value::List(items) = &v else { panic!("order by yields a list") };
    let mut sorted = items.as_ref().clone();
    sorted.sort();
    assert_eq!(items.as_ref(), &sorted);

    let desc = run(
        &mut db,
        "select c.hotel# from c in Cities order by c.hotel# desc",
    );
    let Value::List(items) = &desc else { panic!() };
    let mut sorted = items.as_ref().clone();
    sorted.sort();
    sorted.reverse();
    assert_eq!(items.as_ref(), &sorted);
}

#[test]
fn order_by_keeps_duplicates() {
    let mut db = db();
    let v = run(
        &mut db,
        "select r.bed# from h in Hotels, r in h.rooms order by r.bed#",
    );
    let scale = TravelScale::tiny();
    assert_eq!(v.len().unwrap(), scale.total_hotels() * scale.rooms_per_hotel);
}

#[test]
fn group_by_partitions() {
    let mut db = db();
    let v = run(
        &mut db,
        "select struct(beds: b, n: count(partition)) \
         from h in Hotels, r in h.rooms \
         group by b: r.bed#",
    );
    let Value::Set(groups) = &v else { panic!("group by yields a set") };
    // Total of group counts = total rooms.
    let scale = TravelScale::tiny();
    let total: i64 = groups
        .iter()
        .map(|g| {
            g.field(monoid_calculus::symbol::Symbol::new("n"))
                .unwrap()
                .as_int()
                .unwrap()
        })
        .sum();
    assert_eq!(total as usize, scale.total_hotels() * scale.rooms_per_hotel);
}

#[test]
fn group_by_with_having() {
    let mut db = db();
    let all_groups = run(
        &mut db,
        "select struct(beds: b, n: count(partition)) \
         from h in Hotels, r in h.rooms group by b: r.bed#",
    );
    let filtered = run(
        &mut db,
        "select struct(beds: b, n: count(partition)) \
         from h in Hotels, r in h.rooms group by b: r.bed# \
         having count(partition) > 2",
    );
    assert!(filtered.len().unwrap() <= all_groups.len().unwrap());
    for g in filtered.elements().unwrap() {
        let n = g
            .field(monoid_calculus::symbol::Symbol::new("n"))
            .unwrap()
            .as_int()
            .unwrap();
        assert!(n > 2);
    }
}

#[test]
fn set_operators() {
    let mut db = db();
    let u = run(&mut db, "set(1,2) union set(2,3)");
    assert_eq!(
        u,
        Value::set_from(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
    );
    let i = run(&mut db, "set(1,2,3) intersect set(2,3,4)");
    assert_eq!(i, Value::set_from(vec![Value::Int(2), Value::Int(3)]));
    let e = run(&mut db, "set(1,2,3) except set(2)");
    assert_eq!(e, Value::set_from(vec![Value::Int(1), Value::Int(3)]));
    // bag union is additive
    let b = run(&mut db, "bag(1,2) union bag(2)");
    assert_eq!(
        b,
        Value::bag_from(vec![Value::Int(1), Value::Int(2), Value::Int(2)])
    );
}

#[test]
fn element_flatten_listtoset() {
    let mut db = db();
    let e = run(
        &mut db,
        "element(select c from c in Cities where c.name = 'Portland')",
    );
    assert!(matches!(e, Value::Obj(_)));
    let f = run(&mut db, "flatten(list(list(1,2), list(3)))");
    assert_eq!(
        f,
        Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
    );
    let s = run(&mut db, "listtoset(list(1,1,2))");
    assert_eq!(s, Value::set_from(vec![Value::Int(1), Value::Int(2)]));
    // flatten over a bag of sets joins to a set
    let (q, t) = compile_typed(db.schema(), "flatten(select h.facilities from h in Hotels)")
        .unwrap();
    assert_eq!(t, monoid_calculus::types::Type::set(monoid_calculus::types::Type::Str));
    let v = db.query(&q).unwrap();
    assert!(matches!(v, Value::Set(_)));
}

#[test]
fn defines_inline() {
    let mut db = db();
    let v = run(
        &mut db,
        "define portland as element(select c from c in Cities where c.name = 'Portland'); \
         select h.name from h in portland.hotels",
    );
    assert_eq!(v.len().unwrap(), TravelScale::tiny().hotels_per_city);
}

#[test]
fn like_patterns() {
    let mut db = db();
    let v = run(&mut db, "select c.name from c in Cities where c.name like 'Port%'");
    assert_eq!(v.len().unwrap(), 1);
    let v = run(&mut db, "select c.name from c in Cities where c.name like '%land'");
    assert_eq!(v.len().unwrap(), 1);
    let v = run(&mut db, "select c.name from c in Cities where c.name like '%ortlan%'");
    assert_eq!(v.len().unwrap(), 1);
    let v = run(&mut db, "select c.name from c in Cities where c.name like 'Portland'");
    assert_eq!(v.len().unwrap(), 1);
    let v = run(&mut db, "select c.name from c in Cities where c.name like 'Xyz%'");
    assert_eq!(v.len().unwrap(), 0);
}

#[test]
fn indexing_into_lists() {
    let mut db = db();
    let v = run(
        &mut db,
        "select c.hotels[0].name from c in Cities where c.name = 'Portland'",
    );
    assert_eq!(v.len().unwrap(), 1);
}

#[test]
fn arithmetic_and_string_concat() {
    let mut db = db();
    assert_eq!(run(&mut db, "1 + 2 * 3"), Value::Int(7));
    assert_eq!(run(&mut db, "(1 + 2) * 3"), Value::Int(9));
    assert_eq!(run(&mut db, "7 mod 3"), Value::Int(1));
    assert_eq!(run(&mut db, "'a' || 'b'"), Value::str("ab"));
    assert_eq!(run(&mut db, "-(3) + 4"), Value::Int(1));
}

#[test]
fn illegal_query_is_rejected_with_good_error() {
    let db = db();
    // Iterating hotels (a bag extent) is fine, but a *set* into an ordered
    // list without sorting is not expressible: listtoset is the inverse;
    // here we check a real C/I violation that coercion does not rescue —
    // there is none via the OQL surface (the translator coerces), so check
    // the calculus directly.
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    let bad = Expr::comp(
        Monoid::List,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1)]))],
    );
    let err = db.check(&bad).unwrap_err();
    assert!(err.to_string().contains("illegal homomorphism"), "{err}");
}

#[test]
fn translated_portland_matches_paper_calculus_form() {
    let db = db();
    let q = compile(
        db.schema(),
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = 'Portland' and r.bed# = 3",
    )
    .unwrap();
    // After normalization the term is the paper's §3.1 canonical form.
    let n = normalize(&q);
    assert_eq!(
        pretty(&n),
        "bag{ h.name | c ← Cities, h ← c.hotels, r ← h.rooms, \
         c.name = \"Portland\", r.bed# = 3 }"
    );
}
