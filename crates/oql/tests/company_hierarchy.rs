//! OQL over the class hierarchy (`Manager <: Employee <: Person`):
//! inherited fields in paths, superclass-typed roots, and hierarchy
//! navigation — the subtype features the paper lists among OQL's
//! challenges.

use monoid_calculus::normalize::normalize;
use monoid_calculus::value::Value;
use monoid_oql::compile;
use monoid_store::company;
use monoid_store::Database;

fn db() -> Database {
    company::generate(3, 4, 5, 2026)
}

fn run(db: &mut Database, src: &str) -> Value {
    let q = compile(db.schema(), src).unwrap_or_else(|e| panic!("compile `{src}`: {e}"));
    db.check(&q).unwrap_or_else(|e| panic!("typecheck `{src}`: {e}"));
    let direct = db.query(&q).unwrap();
    let n = normalize(&q);
    assert_eq!(direct, db.query(&n).unwrap(), "normalization changed `{src}`");
    direct
}

#[test]
fn inherited_fields_in_paths() {
    let mut db = db();
    // `name` comes from Person, `salary` from Employee — both reachable
    // on Manager.
    let v = run(
        &mut db,
        "select m.name from m in Managers where m.salary > 0",
    );
    assert_eq!(v.len().unwrap(), 3);
}

#[test]
fn superclass_typed_root() {
    let mut db = db();
    let v = run(&mut db, "count(Staff)");
    assert_eq!(v, Value::Int(3 * 4 + 3));
    // salary is an Employee field; Staff is Employee-typed.
    let total = run(&mut db, "sum(select s.salary from s in Staff)");
    assert!(matches!(total, Value::Int(t) if t > 0));
}

#[test]
fn hierarchy_navigation() {
    let mut db = db();
    // Managers whose every report earns less than they do.
    let v = run(
        &mut db,
        "select m.name from m in Managers \
         where for all r in m.reports: r.salary < m.salary",
    );
    assert!(v.len().unwrap() <= 3);
    // Reports are Employees: their Person-inherited `name` works.
    let names = run(
        &mut db,
        "select distinct r.name from m in Managers, r in m.reports",
    );
    assert_eq!(names.len().unwrap(), 12);
}

#[test]
fn group_staff_by_dept() {
    let mut db = db();
    let v = run(
        &mut db,
        "select struct(dept: d, n: count(partition), top: max(select x.s.salary from x in partition)) \
         from s in Staff group by d: s.dept",
    );
    let Value::Set(groups) = &v else { panic!("group by returns a set") };
    let total: i64 = groups
        .iter()
        .map(|g| {
            g.field(monoid_calculus::symbol::Symbol::new("n"))
                .unwrap()
                .as_int()
                .unwrap()
        })
        .sum();
    assert_eq!(total, 15);
}

#[test]
fn persons_extent_is_separate() {
    let mut db = db();
    assert_eq!(run(&mut db, "count(Persons)"), Value::Int(5));
    assert_eq!(run(&mut db, "count(CompanyEmployees)"), Value::Int(12));
    assert_eq!(run(&mut db, "count(Managers)"), Value::Int(3));
}

#[test]
fn comparing_across_hierarchy_levels_typechecks() {
    let mut db = db();
    // Equality between a Manager and an Employee unifies at the
    // superclass (they are never equal here: extents are disjoint).
    let v = run(
        &mut db,
        "select m.name from m in Managers \
         where exists e in CompanyEmployees: e = m",
    );
    assert_eq!(v.len().unwrap(), 0);
}
