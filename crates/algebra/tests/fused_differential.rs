//! Differential battery for the fused engine: for every monoid the
//! paper's Table 1 defines (minus the lifted `VecOf`, which the
//! accumulator rejects), the fused fold, the plan-walk interpreter, and
//! the parallel driver at several thread counts must produce
//! byte-identical values — same elements, same order, same OIDs. The
//! battery also pins the fallback boundary: shapes the fused compiler
//! declines (hash joins, allocating heads) and sources under the
//! parallel row floor still agree with the plan walk.

use monoid_algebra::{
    engine_of, execute, execute_parallel, execute_plan_walk, plan_comprehension, Query,
};
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_store::travel::{self, TravelScale};
use monoid_store::Database;

const THREADS: &[usize] = &[1, 2, 3, 8];

/// A canonical scan → unnest → filter chain over the travel store:
/// `⊕{ head | h ← Hotels, r ← h.rooms, r.bed# ≥ 1 }`.
fn rooms_chain(monoid: Monoid, head: Expr) -> Query {
    plan_comprehension(&Expr::comp(
        monoid,
        head,
        vec![
            Expr::gen("h", Expr::var("Hotels")),
            Expr::gen("r", Expr::var("h").proj("rooms")),
            Expr::pred(Expr::var("r").proj("bed#").ge(Expr::int(1))),
        ],
    ))
    .unwrap()
}

/// Assert the three engines agree byte-for-byte on `plan`, across every
/// thread count in the ladder.
fn assert_engines_agree(label: &str, plan: &Query, db: &mut Database) {
    let reference = execute_plan_walk(plan, db).unwrap();
    let fused = execute(plan, db).unwrap();
    assert_eq!(reference, fused, "{label}: fused ≠ plan walk");
    for &threads in THREADS {
        let par = execute_parallel(plan, db, threads).unwrap();
        assert_eq!(reference, par, "{label}: parallel({threads}) ≠ plan walk");
    }
}

/// Every monoid the fused engine claims: the chain must classify as
/// fused and agree with the plan walk and the parallel driver.
#[test]
fn all_monoids_agree_across_engines() {
    let mut db = travel::generate(TravelScale::small(), 13);
    let bed = Expr::var("r").proj("bed#");
    let cases: Vec<(&str, Query)> = vec![
        ("list", rooms_chain(Monoid::List, bed.clone())),
        ("bag", rooms_chain(Monoid::Bag, bed.clone())),
        ("set", rooms_chain(Monoid::Set, bed.clone())),
        ("oset", rooms_chain(Monoid::OSet, bed.clone())),
        ("sorted", rooms_chain(Monoid::Sorted, bed.clone())),
        ("sorted-bag", rooms_chain(Monoid::SortedBag, bed.clone())),
        ("sum", rooms_chain(Monoid::Sum, bed.clone())),
        // The product stays in range because every factor is 1; the
        // point is the cross-partition merge, not the arithmetic.
        ("prod", rooms_chain(Monoid::Prod, Expr::int(1))),
        ("max", rooms_chain(Monoid::Max, bed.clone())),
        ("min", rooms_chain(Monoid::Min, bed.clone())),
        // Predicates that never (resp. always) hold, so both booleans
        // fold over the whole extent without short-circuiting.
        ("some", rooms_chain(Monoid::Some, bed.clone().gt(Expr::int(100)))),
        ("all", rooms_chain(Monoid::All, bed.ge(Expr::int(0)))),
        // Str concatenation is order-sensitive: the ordered partition
        // merge is what keeps the parallel result byte-identical.
        (
            "str",
            plan_comprehension(&Expr::comp(
                Monoid::Str,
                Expr::var("h").proj("name"),
                vec![Expr::gen("h", Expr::var("Hotels"))],
            ))
            .unwrap(),
        ),
    ];
    assert_eq!(cases.len(), 13, "one case per non-lifted monoid");
    for (label, plan) in &cases {
        assert_eq!(
            engine_of(plan).as_str(),
            "fused",
            "{label}: chain should classify as fused"
        );
        assert_engines_agree(label, plan, &mut db);
    }
}

/// `some`/`all` with early verdicts: the fused fold and the parallel
/// workers short-circuit (absorbing element reached), and the value must
/// still match the exhaustive plan walk.
#[test]
fn boolean_short_circuits_agree_across_engines() {
    let mut db = travel::generate(TravelScale::small(), 13);
    let bed = Expr::var("r").proj("bed#");
    // Almost every room satisfies `bed# ≥ 1`, so `some` absorbs on the
    // first row and `all` of `bed# > 2` absorbs on the first small room.
    let some = rooms_chain(Monoid::Some, bed.clone().ge(Expr::int(1)));
    let all = rooms_chain(Monoid::All, bed.gt(Expr::int(2)));
    assert_engines_agree("some-short-circuit", &some, &mut db);
    assert_engines_agree("all-short-circuit", &all, &mut db);
}

/// Shapes outside the fused subset fall back to the plan walk — and the
/// fallback must agree with it, sequentially and in parallel.
#[test]
fn fallback_shapes_agree_across_engines() {
    let mut db = travel::generate(TravelScale::small(), 13);
    // An equi-join: the planner rewrites it to a hash probe, which the
    // fused compiler declines.
    let join = plan_comprehension(&Expr::comp(
        Monoid::Sum,
        Expr::int(1),
        vec![
            Expr::gen("a", Expr::var("Hotels")),
            Expr::gen("b", Expr::var("Hotels")),
            Expr::pred(Expr::var("a").proj("name").eq(Expr::var("b").proj("name"))),
        ],
    ))
    .unwrap();
    assert_eq!(engine_of(&join).as_str(), "plan-walk");
    assert_engines_agree("hash-join", &join, &mut db);

    // A nested comprehension in the head is outside the compiled
    // expression subset (it allocates its own accumulator per row).
    let mut allocating = rooms_chain(Monoid::Sum, Expr::int(0));
    allocating.head = Expr::comp(Monoid::Sum, Expr::int(1), vec![]);
    assert_eq!(engine_of(&allocating).as_str(), "plan-walk");
    assert_engines_agree("allocating-head", &allocating, &mut db);
}

/// Sources under `2 × min_rows_per_worker()` make the parallel driver
/// fall back; the fallback itself runs the fused fold, and the value is
/// unchanged at every thread count.
#[test]
fn too_few_rows_boundary_agrees_across_engines() {
    let mut db = travel::generate(TravelScale::tiny(), 13);
    let chain = plan_comprehension(&Expr::comp(
        Monoid::Sum,
        Expr::var("c").proj("hotel#"),
        vec![Expr::gen("c", Expr::var("Cities"))],
    ))
    .unwrap();
    assert_eq!(engine_of(&chain).as_str(), "fused");
    assert_engines_agree("too-few-rows", &chain, &mut db);
}
