//! The full optimization pipeline, end to end, against the travel
//! database: OQL → calculus → normalize → cost-based reorder → plan →
//! index rewrite → (parallel) pipelined execution — every stage must agree
//! with direct evaluation of the original query.

use monoid_algebra::{
    apply_indexes, execute, execute_counted, execute_parallel, plan_comprehension,
    reorder_generators, IndexCatalog, PlanError, Stats,
};
use monoid_calculus::normalize::normalize;
use monoid_calculus::value::Value;
use monoid_oql::compile;
use monoid_store::travel::{self, TravelScale};
use monoid_store::Database;

const BATTERY: &[&str] = &[
    "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
    "select h.name from c in Cities, h in c.hotels, r in h.rooms \
     where c.name = 'Portland' and r.bed# = 3",
    "select distinct r.bed# from h in Hotels, r in h.rooms",
    "select e.name from h in Hotels, e in h.employees where e.salary > 50000",
    "select distinct cl.name from cl in Clients \
     where exists c in Cities: c.name in cl.preferred",
    "select cl.name from cl in Clients, c in Cities \
     where cl.age > c.hotel# and c.name = 'Portland'",
];

fn full_pipeline(db: &mut Database, src: &str) -> Option<Value> {
    let q = compile(db.schema(), src).unwrap_or_else(|e| panic!("compile `{src}`: {e}"));
    let direct = db.query(&q).unwrap();
    let n = normalize(&q);
    let stats = Stats::gather(db);
    let reordered = reorder_generators(&n, &stats);
    assert_eq!(
        direct,
        db.query(&reordered).unwrap(),
        "reordering changed `{src}`"
    );
    let plan = match plan_comprehension(&reordered) {
        Ok(p) => p,
        Err(PlanError::NotAComprehension | PlanError::Unsupported(_)) => return None,
        Err(other) => panic!("planning `{src}`: {other}"),
    };
    let mut catalog = IndexCatalog::new();
    catalog.build(db, "Cities", "name").unwrap();
    catalog.build(db, "Hotels", "name").unwrap();
    let (indexed, _) = apply_indexes(&plan, &catalog, db);
    for (label, p) in [("plain", &plan), ("indexed", &indexed)] {
        let got = execute(p, db).unwrap();
        assert_eq!(direct, got, "{label} plan changed `{src}`");
        let par = execute_parallel(p, db, 4).unwrap();
        assert_eq!(direct, par, "parallel {label} plan changed `{src}`");
    }
    Some(direct)
}

#[test]
fn battery_through_the_full_pipeline() {
    let mut db = travel::generate(TravelScale::small(), 13);
    for src in BATTERY {
        full_pipeline(&mut db, src);
    }
}

#[test]
fn battery_at_scale() {
    let mut db = travel::generate(TravelScale::with_hotels(400), 13);
    for src in BATTERY {
        full_pipeline(&mut db, src);
    }
}

/// The indexed plan must do measurably less work on the selective query.
#[test]
fn index_reduces_step_count() {
    let mut db = travel::generate(TravelScale::with_hotels(800), 13);
    let q = compile(
        db.schema(),
        "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
    )
    .unwrap();
    let plan = plan_comprehension(&normalize(&q)).unwrap();
    let mut catalog = IndexCatalog::new();
    catalog.build(&db, "Cities", "name").unwrap();
    let (indexed, hits) = apply_indexes(&plan, &catalog, &db);
    assert_eq!(hits, 1);
    let (v1, scan_steps) = execute_counted(&plan, &mut db).unwrap();
    let (v2, index_steps) = execute_counted(&indexed, &mut db).unwrap();
    assert_eq!(v1, v2);
    assert!(
        index_steps * 10 < scan_steps,
        "index {index_steps} vs scan {scan_steps}"
    );
}

/// Reordering turns the written-order cross product into a plan whose
/// selective side leads, with measurably fewer evaluation steps.
#[test]
fn reordering_reduces_step_count() {
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    let mut db = travel::generate(TravelScale::with_hotels(400), 13);
    let stats = Stats::gather(&db);
    let q = Expr::comp(
        Monoid::Sum,
        Expr::int(1),
        vec![
            Expr::gen("e", Expr::var("Employees")),
            Expr::gen("c", Expr::var("Cities")),
            Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
            Expr::pred(Expr::var("e").proj("salary").gt(Expr::var("c").proj("hotel#"))),
        ],
    );
    let written = plan_comprehension(&q).unwrap();
    let reordered = plan_comprehension(&reorder_generators(&q, &stats)).unwrap();
    let (v1, s1) = execute_counted(&written, &mut db).unwrap();
    let (v2, s2) = execute_counted(&reordered, &mut db).unwrap();
    assert_eq!(v1, v2);
    assert!(s2 * 2 < s1, "reordered {s2} vs written {s1}");
}
