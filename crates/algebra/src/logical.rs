//! The logical algebra and the translation from canonical comprehensions.
//!
//! The paper (§1, §6) argues the calculus is amenable to efficient
//! evaluation because normalization produces *canonical forms* —
//! comprehensions whose generators range over simple paths — which map
//! directly onto pipelined algebra plans. This module is that mapping:
//!
//! * the first generator becomes a [`Plan::Scan`];
//! * a generator whose source mentions an earlier variable becomes an
//!   [`Plan::Unnest`] (path navigation, e.g. `h ← c.hotels`);
//! * a generator independent of everything bound so far becomes a
//!   [`Plan::Join`] against a fresh scan — upgraded to a *hash* join when
//!   an equality predicate connects the two sides;
//! * predicates are placed at the lowest point where their variables are
//!   bound (predicate pushdown);
//! * the comprehension monoid and head become the top `Reduce`.

use crate::error::PlanError;
use monoid_calculus::analysis::{effects_of, Effects};
use monoid_calculus::expr::{BinOp, Expr, Qual};
use monoid_calculus::monoid::Monoid;
use monoid_calculus::normalize::is_pure;
use monoid_calculus::subst::free_vars;
use monoid_calculus::symbol::Symbol;
use std::collections::HashSet;

/// How a join is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Re-scan the right side per left row (no equi-condition found, or
    /// forced for the ablation benchmark).
    NestedLoop,
    /// Build a map on the right side's key, probe with the left.
    Hash,
}

/// A logical plan node. Rows are variable bindings; every node adds
/// bindings (scan/unnest/join) or filters rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Bind `var` to each element of `source` (evaluated once against the
    /// database roots).
    Scan { var: Symbol, source: Expr },
    /// Bind `var` to each element of `path` evaluated per input row
    /// (dependent generator — pipelined navigation).
    Unnest { input: Box<Plan>, var: Symbol, path: Expr },
    /// Keep rows satisfying `pred`.
    Filter { input: Box<Plan>, pred: Expr },
    /// Bind `var` to `expr` per row (a residual `≡` binding).
    Bind { input: Box<Plan>, var: Symbol, expr: Expr },
    /// Combine independent sub-plans. `on` holds equi-pairs
    /// `(left key, right key)`; empty `on` with `NestedLoop` is a cross
    /// product (plus any residual predicate above).
    Join { left: Box<Plan>, right: Box<Plan>, on: Vec<(Expr, Expr)>, kind: JoinKind },
    /// Bind `var` to each extent member whose indexed field equals `key`
    /// (introduced by `index::apply_indexes`; the index snapshot is
    /// embedded in the plan).
    IndexLookup { var: Symbol, index: std::sync::Arc<crate::index::Index>, key: Box<Expr> },
    /// Probe a *prebuilt* hash-join build side (introduced by the parallel
    /// driver, which materializes a `Join`'s right side once and shares it
    /// across workers through the `Arc`). `on_left` holds the left-side
    /// key expressions, in the same order as the table's keys; empty keys
    /// make it a shared cross product.
    HashProbe { left: Box<Plan>, table: std::sync::Arc<BuildTable>, on_left: Vec<Expr> },
}

/// A materialized hash-join build side: the right sub-plan's binding
/// deltas plus a key → row-indexes map. Built once (by the parallel
/// driver) and probed by many workers concurrently.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BuildTable {
    /// Variables the build side binds, in plan order.
    pub vars: Vec<Symbol>,
    /// One binding delta per build row.
    pub rows: Vec<Vec<(Symbol, monoid_calculus::value::Value)>>,
    /// Right-side key values → indexes into `rows`. With no equi-keys
    /// every row lives under the empty key (a cross product).
    pub index: std::collections::BTreeMap<Vec<monoid_calculus::value::Value>, Vec<usize>>,
}

impl Plan {
    /// The variables this plan binds.
    pub fn bound_vars(&self) -> Vec<Symbol> {
        match self {
            Plan::Scan { var, .. } | Plan::IndexLookup { var, .. } => vec![*var],
            Plan::Unnest { input, var, .. } | Plan::Bind { input, var, .. } => {
                let mut v = input.bound_vars();
                v.push(*var);
                v
            }
            Plan::Filter { input, .. } => input.bound_vars(),
            Plan::Join { left, right, .. } => {
                let mut v = left.bound_vars();
                v.extend(right.bound_vars());
                v
            }
            Plan::HashProbe { left, table, .. } => {
                let mut v = left.bound_vars();
                v.extend(table.vars.iter().copied());
                v
            }
        }
    }

    /// Short operator-kind label — the bounded label space the metering
    /// counters (`exec_rows_pushed_total{operator=…}`) and the plan-quality
    /// audit (`plan_q_error_milli{operator=…}`) aggregate under.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Plan::Scan { .. } => "scan",
            Plan::IndexLookup { .. } => "index-lookup",
            Plan::Unnest { .. } => "unnest",
            Plan::Filter { .. } => "filter",
            Plan::Bind { .. } => "bind",
            Plan::Join { .. } => "join",
            Plan::HashProbe { .. } => "hash-probe",
        }
    }

    /// Number of operators (for stats / tests). A `HashProbe`'s build side
    /// is materialized data, not a plan subtree, so it counts as one node.
    pub fn node_count(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::IndexLookup { .. } => 1,
            Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
                1 + input.node_count()
            }
            Plan::Join { left, right, .. } => 1 + left.node_count() + right.node_count(),
            Plan::HashProbe { left, .. } => 1 + left.node_count(),
        }
    }

    /// Visit every calculus expression embedded in the plan (scan
    /// sources, unnest paths, predicates, bind expressions, join keys).
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Plan::Scan { source, .. } => f(source),
            Plan::IndexLookup { key, .. } => f(key),
            Plan::Unnest { input, path, .. } => {
                f(path);
                input.for_each_expr(f);
            }
            Plan::Filter { input, pred } => {
                f(pred);
                input.for_each_expr(f);
            }
            Plan::Bind { input, expr, .. } => {
                f(expr);
                input.for_each_expr(f);
            }
            Plan::Join { left, right, on, .. } => {
                for (l, r) in on {
                    f(l);
                    f(r);
                }
                left.for_each_expr(f);
                right.for_each_expr(f);
            }
            Plan::HashProbe { left, on_left, .. } => {
                for k in on_left {
                    f(k);
                }
                left.for_each_expr(f);
            }
        }
    }

    /// The join of the effects of every embedded expression — the static
    /// classification the parallel engine consults instead of re-scanning
    /// the plan at runtime (`docs/analysis.md`).
    pub fn effects(&self) -> Effects {
        let mut eff = Effects::PURE;
        self.for_each_expr(&mut |e| eff = eff.join(effects_of(e)));
        eff
    }

    /// Does any join in the plan use the hash strategy?
    pub fn uses_hash_join(&self) -> bool {
        match self {
            Plan::Scan { .. } | Plan::IndexLookup { .. } => false,
            Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
                input.uses_hash_join()
            }
            Plan::Join { left, right, kind, .. } => {
                *kind == JoinKind::Hash || left.uses_hash_join() || right.uses_hash_join()
            }
            Plan::HashProbe { .. } => true,
        }
    }
}

/// A complete query: a row-producing plan reduced into a monoid.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub plan: Plan,
    pub monoid: Monoid,
    pub head: Expr,
    /// Static effect classification of every expression embedded in
    /// `plan`, computed once at plan time ([`Plan::effects`]). The head is
    /// *not* included: it is re-classified at execution time (it is one
    /// small expression, and tests swap it post-planning to exercise
    /// impure reductions).
    pub plan_effects: Effects,
}

/// Planner options (the ablation switches for benchmark B6).
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Detect equality predicates across independent sub-plans and use
    /// hash joins. Off ⇒ every independent join is a filtered cross
    /// product.
    pub hash_joins: bool,
    /// Place predicates at the lowest point where their variables are
    /// bound. Off ⇒ all predicates evaluate at the top of the plan.
    pub push_predicates: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { hash_joins: true, push_predicates: true }
    }
}

/// Compile a canonical comprehension into a [`Query`] plan with default
/// options.
pub fn plan_comprehension(e: &Expr) -> Result<Query, PlanError> {
    plan_with_options(e, PlanOptions::default())
}

/// Compile with explicit options.
pub fn plan_with_options(e: &Expr, opts: PlanOptions) -> Result<Query, PlanError> {
    let Expr::Comp { monoid, head, quals } = e else {
        return Err(match e {
            Expr::VecComp { .. } => PlanError::VectorComprehension,
            _ => PlanError::NotAComprehension,
        });
    };
    if !is_pure(e) {
        return Err(PlanError::Impure);
    }

    // Split qualifiers.
    let mut gens: Vec<(Symbol, Expr)> = Vec::new();
    let mut binds: Vec<(Symbol, Expr)> = Vec::new();
    let mut preds: Vec<Expr> = Vec::new();
    for q in quals {
        match q {
            Qual::Gen(v, src) => gens.push((*v, src.clone())),
            Qual::Bind(v, e) => binds.push((*v, e.clone())),
            Qual::Pred(p) => preds.push(p.clone()),
            Qual::VecGen { .. } => {
                return Err(PlanError::Unsupported(
                    "vector generators (use direct evaluation)".into(),
                ))
            }
        }
    }
    if gens.is_empty() {
        return Err(PlanError::Unsupported(
            "comprehension with no generators (evaluate directly)".into(),
        ));
    }

    // NOTE on ordering: qualifiers are dependency-ordered by construction
    // (a source can only mention earlier variables), and binds/preds are
    // re-placed at their lowest legal point below. Pending predicates wait
    // until their variables are bound.
    let mut plan: Option<Plan> = None;
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut pending_preds: Vec<Expr> = preds;
    let mut pending_binds: Vec<(Symbol, Expr)> = binds;

    for (var, src) in gens {
        let src_fv = free_vars(&src);
        let depends = src_fv.iter().any(|v| bound.contains(v));
        plan = Some(match plan {
            None => Plan::Scan { var, source: src },
            Some(current) => {
                if depends {
                    Plan::Unnest { input: Box::new(current), var, path: src }
                } else {
                    // Independent source: a join. Look for equi-predicates
                    // connecting {bound} × {var} to pick a hash join.
                    let right = Plan::Scan { var, source: src };
                    let mut on: Vec<(Expr, Expr)> = Vec::new();
                    if opts.hash_joins {
                        let mut remaining = Vec::new();
                        for p in pending_preds {
                            match split_equi(&p, &bound, var) {
                                Some(pair) => on.push(pair),
                                None => remaining.push(p),
                            }
                        }
                        pending_preds = remaining;
                    }
                    let kind = if on.is_empty() { JoinKind::NestedLoop } else { JoinKind::Hash };
                    Plan::Join { left: Box::new(current), right: Box::new(right), on, kind }
                }
            }
        });
        bound.insert(var);

        // Place binds/preds that are now fully bound.
        if opts.push_predicates {
            loop {
                let mut progressed = false;
                let mut rest_binds = Vec::new();
                for (bv, be) in std::mem::take(&mut pending_binds) {
                    if free_vars(&be).iter().all(|v| bound.contains(v)) {
                        plan = Some(Plan::Bind {
                            input: Box::new(plan.take().expect("plan started")),
                            var: bv,
                            expr: be,
                        });
                        bound.insert(bv);
                        progressed = true;
                    } else {
                        rest_binds.push((bv, be));
                    }
                }
                pending_binds = rest_binds;
                let mut rest_preds = Vec::new();
                for p in std::mem::take(&mut pending_preds) {
                    if free_vars(&p).iter().all(|v| bound.contains(v)) {
                        plan = Some(Plan::Filter {
                            input: Box::new(plan.take().expect("plan started")),
                            pred: p,
                        });
                        progressed = true;
                    } else {
                        rest_preds.push(p);
                    }
                }
                pending_preds = rest_preds;
                if !progressed {
                    break;
                }
            }
        }
    }

    let mut plan = plan.expect("at least one generator");
    // Anything still pending goes on top (or everything, with pushdown
    // off).
    for (bv, be) in pending_binds {
        plan = Plan::Bind { input: Box::new(plan), var: bv, expr: be };
    }
    for p in pending_preds {
        plan = Plan::Filter { input: Box::new(plan), pred: p };
    }

    let plan_effects = plan.effects();
    let query = Query { plan, monoid: monoid.clone(), head: head.as_ref().clone(), plan_effects };

    // Under MONOID_VERIFY, check the core abstract interpreter's static
    // engine certificates against the actual engine decisions for this
    // fresh plan. Only default options mirror the certificate's model —
    // ablations change the join/unnest topology on purpose.
    if opts.hash_joins
        && opts.push_predicates
        && monoid_calculus::analysis::verify_enabled()
    {
        use monoid_calculus::analysis::{engine_certificate, record_failure, SpanMap};
        let cert = engine_certificate(e, &SpanMap::default());
        let fused_rt = crate::fused::fused_eligible(&query);
        if cert.fused.is_eligible() != fused_rt {
            record_failure("infer/engine-fused");
            panic!(
                "static fused certificate ({}) disagrees with the fused compiler \
                 (eligible={fused_rt}) for {e:?}",
                cert.fused
            );
        }
        let parallel_rt = crate::parallel::static_fallback(&query).is_none();
        if cert.parallel.is_eligible() != parallel_rt {
            record_failure("infer/engine-parallel");
            panic!(
                "static parallel certificate ({}) disagrees with the parallel driver \
                 (eligible={parallel_rt}) for {e:?}",
                cert.parallel
            );
        }
    }
    Ok(query)
}

/// If `p` is `lhs = rhs` with one side's variables all bound (left of the
/// join) and the other side's variables exactly touching `right_var`,
/// return the `(left key, right key)` pair.
fn split_equi(
    p: &Expr,
    bound: &HashSet<Symbol>,
    right_var: Symbol,
) -> Option<(Expr, Expr)> {
    let Expr::BinOp(BinOp::Eq, a, b) = p else { return None };
    let fa = free_vars(a);
    let fb = free_vars(b);
    let left_side = |fv: &HashSet<Symbol>| {
        !fv.is_empty() && fv.iter().all(|v| bound.contains(v))
    };
    let right_side = |fv: &HashSet<Symbol>| {
        fv.contains(&right_var) && fv.iter().all(|v| *v == right_var)
    };
    if left_side(&fa) && right_side(&fb) {
        return Some((a.as_ref().clone(), b.as_ref().clone()));
    }
    if left_side(&fb) && right_side(&fa) {
        return Some((b.as_ref().clone(), a.as_ref().clone()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn portland() -> Expr {
        Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
                Expr::pred(Expr::var("r").proj("bed#").eq(Expr::int(3))),
            ],
        )
    }

    #[test]
    fn portland_becomes_scan_filter_unnest_pipeline() {
        let q = plan_comprehension(&portland()).unwrap();
        // Scan(c) → Filter(name) → Unnest(h) → Unnest(r) → Filter(bed#)
        let Plan::Filter { input, .. } = &q.plan else { panic!("{:?}", q.plan) };
        let Plan::Unnest { input, var, .. } = input.as_ref() else { panic!() };
        assert_eq!(*var, Symbol::new("r"));
        let Plan::Unnest { input, var, .. } = input.as_ref() else { panic!() };
        assert_eq!(*var, Symbol::new("h"));
        let Plan::Filter { input, .. } = input.as_ref() else { panic!() };
        assert!(matches!(input.as_ref(), Plan::Scan { .. }));
        assert!(!q.plan.uses_hash_join());
    }

    #[test]
    fn independent_sources_with_equality_become_hash_join() {
        // bag{ (x,y) | x ← A, y ← B, x.k = y.k }
        let e = Expr::comp(
            Monoid::Bag,
            Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]),
            vec![
                Expr::gen("x", Expr::var("A")),
                Expr::gen("y", Expr::var("B")),
                Expr::pred(Expr::var("x").proj("k").eq(Expr::var("y").proj("k"))),
            ],
        );
        let q = plan_comprehension(&e).unwrap();
        assert!(q.plan.uses_hash_join());
        let Plan::Join { on, kind, .. } = &q.plan else { panic!("{:?}", q.plan) };
        assert_eq!(*kind, JoinKind::Hash);
        assert_eq!(on.len(), 1);
    }

    #[test]
    fn hash_join_detection_can_be_disabled() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("A")),
                Expr::gen("y", Expr::var("B")),
                Expr::pred(Expr::var("x").eq(Expr::var("y"))),
            ],
        );
        let q = plan_with_options(
            &e,
            PlanOptions { hash_joins: false, push_predicates: true },
        )
        .unwrap();
        assert!(!q.plan.uses_hash_join());
    }

    #[test]
    fn impure_comprehension_is_rejected() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("x").deref(),
            vec![Expr::gen("x", Expr::new_obj(Expr::int(0)))],
        );
        assert_eq!(plan_comprehension(&e), Err(PlanError::Impure));
    }

    #[test]
    fn non_comprehension_is_rejected() {
        assert_eq!(
            plan_comprehension(&Expr::int(3)),
            Err(PlanError::NotAComprehension)
        );
    }

    #[test]
    fn predicates_go_to_lowest_point() {
        let q = plan_comprehension(&portland()).unwrap();
        // The city-name filter must sit directly on the scan, not at top.
        fn scan_is_filtered(p: &Plan) -> bool {
            match p {
                Plan::Filter { input, .. } => {
                    matches!(input.as_ref(), Plan::Scan { .. }) || scan_is_filtered(input)
                }
                Plan::Unnest { input, .. } | Plan::Bind { input, .. } => scan_is_filtered(input),
                Plan::Join { left, .. } | Plan::HashProbe { left, .. } => scan_is_filtered(left),
                Plan::Scan { .. } | Plan::IndexLookup { .. } => false,
            }
        }
        assert!(scan_is_filtered(&q.plan));
    }
}
