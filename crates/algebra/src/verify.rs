//! Plan invariant verifier — the physical-layer half of the stage
//! verifier (`monoid_calculus::analysis::verify` checks the calculus
//! rewrites; this module checks the [`Plan`] handed to an executor).
//!
//! Run before execution whenever
//! [`verify_enabled`](monoid_calculus::analysis::verify_enabled) holds
//! (debug builds by default, `MONOID_VERIFY=1` anywhere). Each check is
//! tagged with a stage so failures land in
//! `analysis_verify_failures_total{stage}` and error messages say *which*
//! invariant broke:
//!
//! * `plan/binders` — no operator on a pipeline path rebinds a variable an
//!   upstream operator already bound (a rebind would silently shadow rows).
//! * `plan/build` — every [`BuildTable`] is internally consistent: row
//!   deltas bind exactly the advertised `vars`, index entries point at
//!   real rows, and probe-key arity matches the table's key arity.
//! * `plan/index` — embedded [`Index`](crate::index::Index) snapshots are
//!   epoch-fresh for the database about to be scanned; a stale snapshot
//!   would resurrect deleted objects or miss inserts.
//! * `plan/effects` — plan expressions are mutation-free, matching the
//!   planner's own `PlanError::Impure` refusal (a mutating expression can
//!   only appear through post-planning surgery on the `Query`).

use crate::logical::{Plan, Query};
use monoid_calculus::analysis::verify::record_failure;
use monoid_calculus::analysis::VerifyError;
use monoid_calculus::symbol::Symbol;
use monoid_store::Database;
use std::collections::BTreeSet;

/// Check every plan invariant over `query` against `db`. Returns the
/// first violation, tagged with its stage; also bumps
/// `analysis_verify_failures_total{stage}` on failure.
pub fn verify_query(query: &Query, db: &Database) -> Result<(), VerifyError> {
    verify_query_at(query, db.mutation_epoch())
}

/// [`verify_query`] against a pinned mutation epoch instead of a live
/// database — the snapshot executors' entry point: a reader holding a
/// [`monoid_store::Snapshot`] must check index freshness against the
/// *snapshot's* epoch, not whatever the writer has advanced to since.
pub fn verify_query_at(query: &Query, epoch: u64) -> Result<(), VerifyError> {
    let result = check_binders(&query.plan, &mut BTreeSet::new())
        .and_then(|()| check_build_tables(&query.plan))
        .and_then(|()| check_indexes(&query.plan, epoch))
        .and_then(|()| check_effects(&query.plan));
    if let Err(e) = &result {
        record_failure(e.stage);
    }
    result
}

/// `plan/binders`: walk the pipeline root-to-leaf collecting bound
/// variables; any operator that rebinds an already-bound name is refused.
fn check_binders(plan: &Plan, bound: &mut BTreeSet<Symbol>) -> Result<(), VerifyError> {
    let bind = |var: Symbol, bound: &mut BTreeSet<Symbol>| {
        if bound.insert(var) {
            Ok(())
        } else {
            Err(VerifyError::new(
                "plan/binders",
                format!("operator rebinds `{var}`, which an upstream operator already bound"),
            ))
        }
    };
    match plan {
        Plan::Scan { var, .. } | Plan::IndexLookup { var, .. } => bind(*var, bound),
        Plan::Unnest { input, var, .. } | Plan::Bind { input, var, .. } => {
            check_binders(input, bound)?;
            bind(*var, bound)
        }
        Plan::Filter { input, .. } => check_binders(input, bound),
        Plan::Join { left, right, .. } => {
            check_binders(left, bound)?;
            check_binders(right, bound)
        }
        Plan::HashProbe { left, table, .. } => {
            check_binders(left, bound)?;
            for var in &table.vars {
                bind(*var, bound)?;
            }
            Ok(())
        }
    }
}

/// `plan/build`: every [`BuildTable`](crate::logical::BuildTable) row
/// must bind exactly `vars` (same names, same order), every index entry
/// must reference an existing row, and the probe's `on_left` arity must
/// equal the table's key arity.
fn check_build_tables(plan: &Plan) -> Result<(), VerifyError> {
    match plan {
        Plan::Scan { .. } | Plan::IndexLookup { .. } => Ok(()),
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            check_build_tables(input)
        }
        Plan::Join { left, right, .. } => {
            check_build_tables(left)?;
            check_build_tables(right)
        }
        Plan::HashProbe { left, table, on_left } => {
            check_build_tables(left)?;
            for (i, row) in table.rows.iter().enumerate() {
                let names: Vec<Symbol> = row.iter().map(|(s, _)| *s).collect();
                if names != table.vars {
                    return Err(VerifyError::new(
                        "plan/build",
                        format!(
                            "build row {i} binds {} variable(s) {:?} but the table advertises \
                             {} var(s) {:?}",
                            names.len(),
                            names,
                            table.vars.len(),
                            table.vars
                        ),
                    ));
                }
            }
            for (key, rows) in &table.index {
                if key.len() != on_left.len() {
                    return Err(VerifyError::new(
                        "plan/build",
                        format!(
                            "build index key arity {} does not match probe key arity {}",
                            key.len(),
                            on_left.len()
                        ),
                    ));
                }
                if let Some(&idx) = rows.iter().find(|&&idx| idx >= table.rows.len()) {
                    return Err(VerifyError::new(
                        "plan/build",
                        format!(
                            "build index references row {idx} but the table has only {} row(s)",
                            table.rows.len()
                        ),
                    ));
                }
            }
            Ok(())
        }
    }
}

/// `plan/index`: every embedded index snapshot must carry the executed
/// state's mutation epoch — the same freshness rule
/// `index::apply_indexes` enforces at planning time, re-checked here
/// because mutations may have landed between planning and execution. For
/// a live database the epoch is its current one; for a snapshot read it
/// is the snapshot's pinned epoch.
fn check_indexes(plan: &Plan, epoch: u64) -> Result<(), VerifyError> {
    match plan {
        Plan::Scan { .. } => Ok(()),
        Plan::IndexLookup { index, .. } => {
            if index.built_at_epoch() == epoch {
                Ok(())
            } else {
                Err(VerifyError::new(
                    "plan/index",
                    format!(
                        "index on {}.{} was built at mutation epoch {} but the data being \
                         scanned is at epoch {}; rebuild with `apply_indexes_rebuilding`",
                        index.extent,
                        index.field,
                        index.built_at_epoch(),
                        epoch
                    ),
                ))
            }
        }
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            check_indexes(input, epoch)
        }
        Plan::Join { left, right, .. } => {
            check_indexes(left, epoch)?;
            check_indexes(right, epoch)
        }
        Plan::HashProbe { left, .. } => check_indexes(left, epoch),
    }
}

/// `plan/effects`: the planner refuses impure comprehensions
/// (`PlanError::Impure`), so a mutating expression inside a plan means
/// the plan was modified after planning — refuse to execute it.
fn check_effects(plan: &Plan) -> Result<(), VerifyError> {
    let effects = plan.effects();
    if effects.mutates {
        return Err(VerifyError::new(
            "plan/effects",
            "plan contains a mutating (`:=`) expression; the planner never emits one, so the \
             plan was altered after planning"
                .to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexCatalog;
    use crate::logical::{plan_comprehension, BuildTable};
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_calculus::value::Value;
    use monoid_store::travel::{self, TravelScale};
    use std::sync::Arc;

    fn sample_query() -> Query {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("c").proj("name"),
            vec![Expr::gen("c", Expr::var("Cities"))],
        );
        plan_comprehension(&e).unwrap()
    }

    #[test]
    fn well_formed_query_passes() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let query = sample_query();
        assert!(verify_query(&query, &db).is_ok());
    }

    #[test]
    fn duplicate_binder_is_caught() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let mut query = sample_query();
        query.plan = Plan::Unnest {
            input: Box::new(query.plan.clone()),
            var: Symbol::new("c"),
            path: Expr::var("c").proj("hotels"),
        };
        let err = verify_query(&query, &db).unwrap_err();
        assert_eq!(err.stage, "plan/binders");
        assert!(err.to_string().contains("rebinds"), "{err}");
    }

    #[test]
    fn stale_index_is_refused() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Cities", "name").unwrap();
        let index = cat.get(Symbol::new("Cities"), Symbol::new("name")).unwrap().clone();
        let mut query = sample_query();
        query.plan = Plan::IndexLookup {
            var: Symbol::new("c"),
            index,
            key: Box::new(Expr::str("Portland")),
        };
        assert!(verify_query(&query, &db).is_ok(), "fresh snapshot passes");

        // Any root mutation advances the epoch and strands the snapshot.
        db.set_root("Spare", Value::list(vec![]));
        let err = verify_query(&query, &db).unwrap_err();
        assert_eq!(err.stage, "plan/index");
        assert!(err.to_string().contains("epoch"), "{err}");
    }

    #[test]
    fn inconsistent_build_table_is_caught() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let mut query = sample_query();
        let x = Symbol::new("x");
        let y = Symbol::new("y");
        let table = BuildTable {
            vars: vec![x, y],
            rows: vec![vec![(x, Value::Int(1))]], // missing `y`
            index: Default::default(),
        };
        query.plan = Plan::HashProbe {
            left: Box::new(query.plan.clone()),
            table: Arc::new(table),
            on_left: vec![],
        };
        let err = verify_query(&query, &db).unwrap_err();
        assert_eq!(err.stage, "plan/build");
    }

    #[test]
    fn probe_key_arity_mismatch_is_caught() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let mut query = sample_query();
        let x = Symbol::new("x");
        let mut index = std::collections::BTreeMap::new();
        index.insert(vec![Value::Int(1), Value::Int(2)], vec![0]);
        let table =
            BuildTable { vars: vec![x], rows: vec![vec![(x, Value::Int(1))]], index };
        query.plan = Plan::HashProbe {
            left: Box::new(query.plan.clone()),
            table: Arc::new(table),
            on_left: vec![Expr::var("c").proj("name")], // arity 1 vs key arity 2
        };
        let err = verify_query(&query, &db).unwrap_err();
        assert_eq!(err.stage, "plan/build");
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn post_planning_mutation_is_caught() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let mut query = sample_query();
        query.plan = Plan::Filter {
            input: Box::new(query.plan.clone()),
            pred: Expr::var("c").assign(Expr::int(0)),
        };
        let err = verify_query(&query, &db).unwrap_err();
        assert_eq!(err.stage, "plan/effects");
        assert!(err.to_string().contains(":="), "{err}");
    }
}
