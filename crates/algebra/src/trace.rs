//! `EXPLAIN ANALYZE`: profiled execution of algebra plans.
//!
//! This module runs the normalize → optimize → plan → execute pipeline
//! with a [`QueryTrace`] recording wall-clock time per phase, and threads
//! a [`Cell`]-based [`Probe`] through the push-based executor to count
//! rows and operator-local time per plan node. The result is a
//! [`QueryProfile`]: the `explain` tree annotated with the optimizer's
//! *estimated* cardinalities ([`Stats::plan_estimates`]) next to the
//! *observed* row counts — reading the skew between the two is how you
//! find out where the cost model lies. Profiles serialize to JSON through
//! [`monoid_calculus::json::Json`] for the bench harness.
//!
//! The unprofiled entry points ([`crate::execute`]) use [`NoProbe`] and
//! compile all instrumentation away; nothing here taxes normal execution.

use crate::error::ExecResult;
use crate::exec::{self, Probe};
use crate::explain;
use crate::logical::{plan_comprehension, Plan, Query};
use crate::optimizer::{reorder_generators, Stats};
use monoid_calculus::error::EvalError;
use monoid_calculus::expr::Expr;
use monoid_calculus::json::Json;
use monoid_calculus::normalize::normalize_traced;
use monoid_calculus::pretty::pretty;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::trace::{Phase, QueryTrace};
use monoid_calculus::value::Value;
use monoid_store::Database;
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The plan-quality audit switch. Off by default so profiled runs stay
/// registry-invisible; flip it (or set `MONOID_AUDIT=1`) and every
/// [`explain_analyze`] / [`execute_profiled_bound`] run feeds its
/// per-operator q-errors into the global metrics registry under
/// `plan_q_error_milli{operator=<kind>}`.
fn audit_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("MONOID_AUDIT")
            .map(|v| !matches!(v.as_str(), "" | "0" | "false" | "off"))
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Is corpus-wide q-error auditing on?
pub fn audit_enabled() -> bool {
    audit_flag().load(Ordering::Relaxed)
}

/// Enable or disable q-error auditing at runtime (overrides
/// `MONOID_AUDIT`). Returns the previous setting so callers can scope
/// the change.
pub fn set_audit_enabled(on: bool) -> bool {
    audit_flag().swap(on, Ordering::Relaxed)
}

/// Feed one profile's per-operator q-errors into the registry. Values
/// are recorded in milli-q units (`q × 1000`, so a perfect estimate is
/// 1000) because the log₂ histogram buckets would otherwise collapse
/// every q-error below 2.0 into one bucket.
fn record_audit(profile: &QueryProfile) {
    let r = monoid_calculus::metrics::global();
    for o in &profile.operators {
        let milli = (o.q_error() * 1000.0).round() as u64;
        r.histogram_with("plan_q_error_milli", &[("operator", o.kind)]).observe(milli);
    }
}

/// The counting probe: one set of cells per plan operator, indexed by the
/// operator's pre-order position. `Cell` (not atomics) because profiled
/// execution is single-threaded; interior mutability lets one `&ExecProbe`
/// be shared by every nested sink closure in the pipeline.
pub(crate) struct ExecProbe {
    rows: Vec<Cell<u64>>,
    build: Vec<Cell<u64>>,
    nanos: Vec<Cell<u64>>,
    steps: Vec<Cell<u64>>,
    allocs: Vec<Cell<u64>>,
    short_circuited: Cell<bool>,
}

impl ExecProbe {
    pub(crate) fn new(operators: usize) -> ExecProbe {
        ExecProbe {
            rows: (0..operators).map(|_| Cell::new(0)).collect(),
            build: (0..operators).map(|_| Cell::new(0)).collect(),
            nanos: (0..operators).map(|_| Cell::new(0)).collect(),
            steps: (0..operators).map(|_| Cell::new(0)).collect(),
            allocs: (0..operators).map(|_| Cell::new(0)).collect(),
            short_circuited: Cell::new(false),
        }
    }
}

impl Probe for ExecProbe {
    const ENABLED: bool = true;

    #[inline]
    fn row_out(&self, op: usize) {
        let c = &self.rows[op];
        c.set(c.get() + 1);
    }

    #[inline]
    fn build_rows(&self, op: usize, n: u64) {
        let c = &self.build[op];
        c.set(c.get() + n);
    }

    #[inline]
    fn self_nanos(&self, op: usize, nanos: u64) {
        let c = &self.nanos[op];
        c.set(c.get() + nanos);
    }

    #[inline]
    fn eval_steps(&self, op: usize, steps: u64) {
        let c = &self.steps[op];
        c.set(c.get() + steps);
    }

    #[inline]
    fn heap_allocs(&self, op: usize, n: u64) {
        let c = &self.allocs[op];
        c.set(c.get() + n);
    }

    #[inline]
    fn short_circuit(&self) {
        self.short_circuited.set(true);
    }
}

/// What one plan operator did during a profiled run, next to what the
/// optimizer predicted it would do.
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Pre-order position in the plan tree (0 = root).
    pub op: usize,
    /// The `explain` label, e.g. `Scan c ← Cities`.
    pub label: String,
    /// Operator kind ([`Plan::kind_label`]) — the bounded label the
    /// plan-quality audit aggregates under.
    pub kind: &'static str,
    /// Tree depth (root = 0), for rendering.
    pub depth: usize,
    /// The optimizer's estimated output cardinality.
    pub estimated_rows: f64,
    /// Rows actually pushed to the consumer.
    pub actual_rows: u64,
    /// Build-side rows materialized (joins only; 0 elsewhere).
    pub build_rows: u64,
    /// Operator-local wall-clock time (source/predicate/path evaluation,
    /// hash build), excluding time spent in its input or consumer. Always
    /// reported — a 0 means the operator's own work never crossed the
    /// clock's resolution, not that it was skipped.
    pub self_nanos: u64,
    /// Evaluator steps (AST-node visits) the operator-local work
    /// consumed — divide by `actual_rows` for per-row dispatch overhead.
    pub eval_steps: u64,
    /// Heap mutations (alloc/set version-counter delta) the
    /// operator-local work performed.
    pub heap_allocs: u64,
}

impl OperatorProfile {
    /// The q-error of this operator's cardinality estimate:
    /// `max(est/actual, actual/est)`, both sides clamped to ≥ 1 row so
    /// empty outputs stay finite. 1.0 is a perfect estimate; 4.0 means
    /// the optimizer was off by 4× in either direction. Short-circuited
    /// runs legitimately under-produce rows, so read their q-errors with
    /// [`QueryProfile::short_circuited`] in hand.
    pub fn q_error(&self) -> f64 {
        let est = self.estimated_rows.max(1.0);
        let actual = (self.actual_rows as f64).max(1.0);
        (est / actual).max(actual / est)
    }
}

/// The full profile of one query execution.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Output monoid of the reduction, e.g. `bag`.
    pub monoid: String,
    /// The reduction head, pretty-printed.
    pub head: String,
    /// Per-operator metrics in pre-order (`operators[i].op == i`).
    pub operators: Vec<OperatorProfile>,
    /// Lifecycle phase timings (and normalization stats, when the query
    /// came through `normalize`).
    pub trace: QueryTrace,
    /// Rows the plan root pushed into the `Reduce` accumulator.
    pub rows_to_reduce: u64,
    /// Did a `some`/`all` reduction absorb and cut execution short?
    pub short_circuited: bool,
    /// Evaluator steps consumed (the pre-existing opaque cost proxy).
    pub eval_steps: u64,
    /// Why [`crate::parallel`] would decline to partition this query
    /// (`"mutation"`), or `None` when it is parallel-eligible. Static
    /// classification — the profiled run itself is sequential.
    pub parallel_fallback: Option<String>,
    /// The engine [`crate::exec::execute`] would run this query on
    /// (`"fused"` or `"plan-walk"`). Static classification: the profiled
    /// run itself always walks the plan — per-operator row/time
    /// attribution has no meaning inside a fused fold.
    pub engine: String,
}

impl QueryProfile {
    fn assemble(query: &Query, estimates: &[f64], probe: &ExecProbe, trace: QueryTrace, eval_steps: u64) -> QueryProfile {
        let mut operators = Vec::with_capacity(estimates.len());
        collect_operators(&query.plan, 0, 0, estimates, probe, &mut operators);
        QueryProfile {
            monoid: query.monoid.to_string(),
            head: pretty(&query.head),
            operators,
            rows_to_reduce: probe.rows.first().map(Cell::get).unwrap_or(0),
            short_circuited: probe.short_circuited.get(),
            eval_steps,
            parallel_fallback: crate::parallel::static_fallback(query)
                .map(|f| f.as_str().to_string()),
            engine: crate::fused::engine_of(query).as_str().to_string(),
            trace,
        }
    }

    /// Render the annotated plan tree plus the phase table — the human
    /// `EXPLAIN ANALYZE` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Reduce[{}] head = {}  (rows in: {}{})",
            self.monoid,
            self.head,
            self.rows_to_reduce,
            if self.short_circuited { ", short-circuited" } else { "" },
        );
        for o in &self.operators {
            for _ in 0..=o.depth {
                out.push_str("  ");
            }
            let _ = write!(
                out,
                "{}  (est≈{}, actual {} rows",
                o.label,
                explain::fmt_rows(o.estimated_rows),
                o.actual_rows
            );
            if o.build_rows > 0 {
                let _ = write!(out, ", build {} rows", o.build_rows);
            }
            // `self` is always printed (0 means "below clock resolution",
            // not "not measured") so the column set is stable for tooling
            // that scrapes the text output — mirroring the JSON schema.
            let _ = write!(out, ", self {}", fmt_nanos(o.self_nanos as u128));
            if o.eval_steps > 0 {
                let _ = write!(out, ", steps {}", o.eval_steps);
            }
            if o.heap_allocs > 0 {
                let _ = write!(out, ", allocs {}", o.heap_allocs);
            }
            out.push_str(")\n");
        }
        if let Some(worst) = self.worst_q_error() {
            let _ = writeln!(
                out,
                "q-error: median {:.2}, max {:.2} at op {} ({})",
                self.median_q_error().unwrap_or(1.0),
                worst.q_error(),
                worst.op,
                worst.label,
            );
        }
        let _ = writeln!(out, "phases ({} total):", fmt_nanos(self.trace.total_nanos()));
        for t in &self.trace.phases {
            let _ = writeln!(out, "  {:<10} {}", t.phase.as_str(), fmt_nanos(t.nanos));
        }
        if let Some(stats) = &self.trace.normalize {
            let _ = writeln!(
                out,
                "  normalize: {} rewrite steps, size {} → {}",
                stats.steps, stats.size_before, stats.size_after
            );
            if stats.steps > 0 {
                let _ = writeln!(out, "  rules fired: {}", stats.render_rules());
            }
        }
        let _ = writeln!(out, "evaluator steps: {}", self.eval_steps);
        let _ = writeln!(out, "engine: {} (profiled run walks the plan)", self.engine);
        let _ = match &self.parallel_fallback {
            Some(reason) => writeln!(out, "parallel: would fall back ({reason})"),
            None => writeln!(out, "parallel: eligible (ordered partitioned reduction)"),
        };
        out
    }

    /// Serialize the whole profile (the schema `docs/observability.md`
    /// documents).
    pub fn to_json(&self) -> Json {
        let operators = Json::Arr(
            self.operators
                .iter()
                .map(|o| {
                    Json::obj(vec![
                        ("op", Json::from(o.op)),
                        ("operator", Json::str(o.label.clone())),
                        ("kind", Json::str(o.kind.to_string())),
                        ("depth", Json::from(o.depth)),
                        ("estimated_rows", Json::Float(o.estimated_rows)),
                        ("actual_rows", Json::from(o.actual_rows)),
                        ("build_rows", Json::from(o.build_rows)),
                        ("q_error", Json::Float(o.q_error())),
                        ("self_nanos", Json::from(o.self_nanos)),
                        ("eval_steps", Json::from(o.eval_steps)),
                        ("heap_allocs", Json::from(o.heap_allocs)),
                    ])
                })
                .collect(),
        );
        let q_error = match self.worst_q_error() {
            Some(worst) => Json::obj(vec![
                ("max", Json::Float(worst.q_error())),
                ("median", Json::Float(self.median_q_error().unwrap_or(1.0))),
                ("worst_op", Json::from(worst.op)),
                ("worst_operator", Json::str(worst.label.clone())),
            ]),
            None => Json::Null,
        };
        Json::obj(vec![
            ("monoid", Json::str(self.monoid.clone())),
            ("head", Json::str(self.head.clone())),
            ("operators", operators),
            ("q_error", q_error),
            ("rows_to_reduce", Json::from(self.rows_to_reduce)),
            ("short_circuited", Json::Bool(self.short_circuited)),
            ("eval_steps", Json::from(self.eval_steps)),
            ("engine", Json::str(self.engine.clone())),
            (
                "parallel_fallback",
                self.parallel_fallback.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            ("trace", self.trace.to_json()),
        ])
    }

    /// The operator whose cardinality estimate was furthest off (highest
    /// [`OperatorProfile::q_error`]); `None` for an empty plan.
    pub fn worst_q_error(&self) -> Option<&OperatorProfile> {
        self.operators
            .iter()
            .max_by(|a, b| a.q_error().total_cmp(&b.q_error()))
    }

    /// The maximum per-operator q-error, or `None` for an empty plan.
    pub fn max_q_error(&self) -> Option<f64> {
        self.worst_q_error().map(OperatorProfile::q_error)
    }

    /// The lower-median of the per-operator q-errors — the headline
    /// "how honest was the cost model on this query" number the audit
    /// report aggregates corpus-wide.
    pub fn median_q_error(&self) -> Option<f64> {
        if self.operators.is_empty() {
            return None;
        }
        let mut qs: Vec<f64> = self.operators.iter().map(OperatorProfile::q_error).collect();
        qs.sort_by(f64::total_cmp);
        Some(qs[(qs.len() - 1) / 2])
    }

    /// Render the profile as folded stacks — one line per operator,
    /// `frame;frame;frame nanos` — the input format of `flamegraph.pl`
    /// and inferno. The reduction is the root frame; each operator's
    /// value is its *self* time, so the flamegraph's widths compose
    /// without double counting.
    pub fn to_folded(&self) -> String {
        let root = format!("Reduce[{}]", self.monoid);
        fold_stacks(
            &root,
            self.operators.iter().map(|o| (o.label.clone(), o.depth, o.self_nanos)),
        )
    }
}

/// Build folded-stack lines from pre-order `(label, depth, self_nanos)`
/// triples under a synthetic `root` frame. Frames are sanitized so the
/// output always parses: `;` (the frame separator) becomes `,`,
/// newlines collapse to spaces, and an empty label renders as `?`.
/// Zero-valued leaves are kept — flamegraph tooling accepts them and
/// dropping them would hide cheap operators from the tree shape.
pub fn fold_stacks(
    root: &str,
    ops: impl Iterator<Item = (String, usize, u64)>,
) -> String {
    let mut stack: Vec<String> = vec![folded_frame(root)];
    let mut out = String::new();
    for (label, depth, nanos) in ops {
        // depth is relative to the operator tree; +1 leaves room for root.
        stack.truncate(depth + 1);
        stack.push(folded_frame(&label));
        let _ = writeln!(out, "{} {nanos}", stack.join(";"));
    }
    out
}

fn folded_frame(label: &str) -> String {
    let cleaned: String = label
        .chars()
        .map(|c| match c {
            ';' => ',',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    let trimmed = cleaned.trim();
    if trimmed.is_empty() {
        "?".to_string()
    } else {
        trimmed.to_string()
    }
}

/// A profiled run: the query's value and how it was computed.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub value: Value,
    pub profile: QueryProfile,
}

/// Run the whole back-end pipeline on a calculus expression — normalize,
/// gather statistics and reorder, plan, execute — profiling each phase
/// and every plan operator. For OQL source (adding parse/translate
/// phases), use the umbrella crate's `explain_analyze`.
pub fn explain_analyze(e: &Expr, db: &mut Database) -> ExecResult<Analysis> {
    analyze_with_trace(e, db, QueryTrace::new())
}

/// [`explain_analyze`] continuing a trace the front end already started
/// (with parse/translate timings and the source text filled in).
pub fn analyze_with_trace(
    e: &Expr,
    db: &mut Database,
    mut trace: QueryTrace,
) -> ExecResult<Analysis> {
    let start = Instant::now();
    let (canonical, _derivation, nstats) = normalize_traced(e);
    trace.record(Phase::Normalize, start.elapsed().as_nanos());
    trace.normalize = Some(nstats);

    let start = Instant::now();
    let stats = Stats::gather(db);
    let reordered = reorder_generators(&canonical, &stats);
    trace.record(Phase::Optimize, start.elapsed().as_nanos());

    let start = Instant::now();
    // Plan errors surface as evaluation errors so profiled and unprofiled
    // paths share one error type.
    let query = plan_comprehension(&reordered).map_err(|pe| EvalError::Other(pe.to_string()))?;
    trace.record(Phase::Plan, start.elapsed().as_nanos());

    profile_execution(&query, &stats, db, &[], trace)
}

/// Profile only the execution of an already-planned query (statistics are
/// still gathered so the estimate column is populated).
pub fn execute_profiled(query: &Query, db: &mut Database) -> ExecResult<Analysis> {
    execute_profiled_bound(query, db, &[])
}

/// [`execute_profiled`] with late-bound parameter values — what the
/// serving layer's slow-query capture uses to re-run an over-threshold
/// prepared statement under the profiler.
pub fn execute_profiled_bound(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
) -> ExecResult<Analysis> {
    let stats = Stats::gather(db);
    profile_execution(query, &stats, db, params, QueryTrace::new())
}

fn profile_execution(
    query: &Query,
    stats: &Stats,
    db: &mut Database,
    params: &[(Symbol, Value)],
    mut trace: QueryTrace,
) -> ExecResult<Analysis> {
    let probe = ExecProbe::new(query.plan.node_count());
    let start = Instant::now();
    let (value, eval_steps) = exec::execute_probed_bound(query, db, params, &probe)?;
    trace.record(Phase::Execute, start.elapsed().as_nanos());
    let estimates = stats.query_estimates(query);
    let profile = QueryProfile::assemble(query, &estimates, &probe, trace, eval_steps);
    if audit_enabled() {
        record_audit(&profile);
    }
    Ok(Analysis { value, profile })
}

fn collect_operators(
    plan: &Plan,
    op: usize,
    depth: usize,
    estimates: &[f64],
    probe: &ExecProbe,
    out: &mut Vec<OperatorProfile>,
) {
    out.push(OperatorProfile {
        op,
        label: explain::op_label(plan),
        kind: plan.kind_label(),
        depth,
        estimated_rows: estimates.get(op).copied().unwrap_or(0.0),
        actual_rows: probe.rows[op].get(),
        build_rows: probe.build[op].get(),
        self_nanos: probe.nanos[op].get(),
        eval_steps: probe.steps[op].get(),
        heap_allocs: probe.allocs[op].get(),
    });
    match plan {
        Plan::Scan { .. } | Plan::IndexLookup { .. } => {}
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            collect_operators(input, op + 1, depth + 1, estimates, probe, out);
        }
        Plan::Join { left, right, .. } => {
            collect_operators(left, op + 1, depth + 1, estimates, probe, out);
            collect_operators(right, op + 1 + left.node_count(), depth + 1, estimates, probe, out);
        }
        Plan::HashProbe { left, .. } => {
            collect_operators(left, op + 1, depth + 1, estimates, probe, out);
        }
    }
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn profile_counts_match_pipeline_shape() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let analysis = explain_analyze(&q, &mut db).unwrap();
        let p = &analysis.profile;
        // A linear chain: the unprofiled path would run it fused, and the
        // profile says so even though the profiled run walked the plan.
        assert_eq!(p.engine, "fused");
        let json = p.to_json().render();
        assert!(json.contains("\"engine\""), "{json}");
        // Pre-order: Unnest, Filter, Scan.
        assert_eq!(p.operators.len(), 3);
        assert!(p.operators[2].label.starts_with("Scan c"), "{}", p.render());
        let scan = p.operators[2].actual_rows;
        let filtered = p.operators[1].actual_rows;
        let unnested = p.operators[0].actual_rows;
        assert_eq!(scan, TravelScale::tiny().cities as u64);
        assert_eq!(filtered, 1, "one Portland");
        assert!(unnested >= filtered, "unnest fans out");
        assert_eq!(p.rows_to_reduce, unnested);
        assert!(!p.short_circuited);
        // The result agrees with direct execution.
        let plan = plan_comprehension(&q).unwrap();
        assert_eq!(analysis.value, crate::exec::execute(&plan, &mut db).unwrap());
        // Phases normalize/optimize/plan/execute all recorded.
        for phase in [Phase::Normalize, Phase::Optimize, Phase::Plan, Phase::Execute] {
            assert!(p.trace.phase_nanos(phase).is_some(), "missing {phase}");
        }
    }

    #[test]
    fn hash_join_profile_reports_build_side() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Hotels")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(Expr::var("a").proj("name").eq(Expr::var("b").proj("name"))),
            ],
        );
        let analysis = explain_analyze(&q, &mut db).unwrap();
        let p = &analysis.profile;
        assert_eq!(p.engine, "plan-walk", "joins stay on the plan walk");
        let join = p
            .operators
            .iter()
            .find(|o| o.label.starts_with("HashJoin"))
            .expect("hash join planned");
        let hotels = db.extent_len("Hotels") as u64;
        assert_eq!(join.build_rows, hotels);
        assert_eq!(join.actual_rows, hotels, "self-join on a key");
        // Estimated and actual are both present and positive.
        assert!(join.estimated_rows > 0.0);
        let json = p.to_json().render();
        assert!(json.contains("\"build_rows\""), "{json}");
        assert!(json.contains("\"operators\""), "{json}");
    }

    #[test]
    fn render_shows_estimates_next_to_actuals() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("c", Expr::var("Cities"))],
        );
        let analysis = explain_analyze(&q, &mut db).unwrap();
        let s = analysis.profile.render();
        assert!(s.contains("est≈3.0"), "{s}");
        assert!(s.contains("actual 3 rows"), "{s}");
        assert!(s.contains("phases"), "{s}");
        assert!(s.contains("execute"), "{s}");
    }
}
