//! # monoid-algebra
//!
//! The evaluation back end for canonical monoid comprehensions — the
//! paper's *efficient evaluation* leg (§1, §6 sketch the translation into
//! a logical algebra; the companion paper \[17\] develops the physical
//! mapping, which this crate realizes in Volcano/push style).
//!
//! * [`logical`] — plan operators (Scan, Unnest, Filter, Bind, Join) and
//!   the canonical-comprehension → plan translation with predicate
//!   pushdown and equi-join (hash) detection.
//! * [`exec`] — push-based pipelined execution: no intermediate
//!   materialization except hash-join build sides, with `some`/`all`
//!   short-circuiting.
//! * [`fused`](mod@fused) — fused batch execution: linear
//!   scan → filter → bind → unnest chains compile into one monomorphic
//!   fold over a slot-addressed row buffer, borrowing rows from extents
//!   instead of allocating per-row environments; byte-identical to the
//!   plan walk, which remains the fallback for everything else.
//! * [`parallel`] — ordered partitioned parallel reduction: partials merge
//!   in partition order, so associativity alone makes every monoid —
//!   including lists, strings, and sorted collections — parallelizable;
//!   worker-allocated objects are reconciled back into the shared heap.
//! * [`optimizer`] — cost-based qualifier reordering (join ordering as a
//!   calculus-level permutation, valid by commutativity) with statistics
//!   gathered from the database.
//! * [`index`] — secondary indexes on extent fields and the optimizer
//!   pass that turns filtered scans into index lookups (the physical
//!   design dimension of companion paper \[17\]).
//! * [`explain`](mod@explain) — human-readable plan trees, optionally
//!   annotated with the optimizer's cardinality estimates.
//! * [`trace`] — `EXPLAIN ANALYZE`: profiled execution with per-phase
//!   wall-clock timings and per-operator row/time counters, serializable
//!   to JSON.
//! * [`metrics`](mod@metrics) — fleet metering: a probe that feeds
//!   cumulative per-operator-kind row/build/short-circuit counters into
//!   the process-wide registry (`monoid_calculus::metrics`).
//! * [`verify`] — plan invariant verifier: binder consistency, build-table
//!   shape, index snapshot freshness, and mutation-freedom, re-checked
//!   before every execution when stage verification is on
//!   (`MONOID_VERIFY=1`, or any debug build).
//!
//! Typical flow: `compile` OQL → `normalize` → [`logical::plan_comprehension`]
//! → [`exec::execute`] (or [`trace::explain_analyze`] to see where rows
//! and time go).

pub mod error;
pub mod exec;
pub mod explain;
pub mod fused;
pub mod index;
pub mod logical;
pub mod metrics;
pub mod optimizer;
pub mod parallel;
pub mod trace;
pub mod verify;

pub use error::PlanError;
pub use exec::{
    execute, execute_bound, execute_counted, execute_counted_bound, execute_plan_walk,
    execute_plan_walk_bound, execute_snapshot, execute_snapshot_bound, NoProbe, Probe,
};
pub use fused::{engine_of, fused_eligible, Engine};
pub use metrics::{
    execute_metered, execute_metered_bound, execute_parallel_metered,
    execute_parallel_metered_bound, MetricsProbe,
};
pub use explain::{explain, explain_with_estimates};
pub use index::{apply_indexes, apply_indexes_rebuilding, Index, IndexCatalog};
pub use optimizer::{reorder_generators, Stats};
pub use logical::{
    plan_comprehension, plan_with_options, BuildTable, JoinKind, Plan, PlanOptions, Query,
};
pub use parallel::{
    default_threads, execute_parallel, execute_parallel_auto, execute_parallel_auto_bound,
    execute_parallel_bound, execute_parallel_traced, execute_parallel_with,
    execute_parallel_with_bound, min_rows_per_worker, static_fallback, Fallback, ParallelReport,
};
pub use trace::{
    analyze_with_trace, audit_enabled, execute_profiled, execute_profiled_bound, explain_analyze,
    fold_stacks, set_audit_enabled, Analysis, OperatorProfile, QueryProfile,
};
pub use verify::{verify_query, verify_query_at};
