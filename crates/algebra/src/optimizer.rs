//! Cost-based qualifier reordering — join ordering at the *calculus*
//! level.
//!
//! Because a commutative output monoid makes generator order semantically
//! irrelevant (the interchange law), a canonical comprehension can be
//! reordered freely as long as variable dependencies are respected. That
//! is the manipulability dividend the paper advertises: join ordering is a
//! permutation of qualifiers, not a tree rewrite.
//!
//! The optimizer greedily picks, at each step, the *available* generator
//! (all source variables bound) with the lowest estimated cost:
//!
//! * extents: their actual size from [`Stats::gather`];
//! * dependent paths (`h ← c.hotels`): the measured average fan-out of
//!   that field, falling back to a default;
//! * each predicate that becomes applicable right after a generator
//!   multiplies its estimated selectivity (equality ⇒ 0.1, comparison ⇒
//!   0.5) into the running cardinality.
//!
//! Non-commutative monoids (list, oset, …) are left untouched — their
//! order is meaning.

use monoid_calculus::analysis::constraints::{AttrFacts, Catalog, ExtentFacts};
use monoid_calculus::analysis::effects::monoid_short_circuits;
use monoid_calculus::expr::{BinOp, Expr, Literal, Qual, UnOp};
use monoid_calculus::heap::Heap;
use monoid_calculus::subst::free_vars;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::Value;
use monoid_store::{Database, Snapshot};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Cardinality statistics gathered from a database.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Extent / root name → element count.
    extent_sizes: HashMap<Symbol, f64>,
    /// Field name → average collection fan-out (across all objects that
    /// have that field with a collection value).
    fanouts: HashMap<Symbol, f64>,
    /// Per-attribute domain facts (distinct counts, value frequencies,
    /// numeric min/max) for the abstract interpreter and the refined
    /// selectivity model.
    catalog: Catalog,
    /// The database `mutation_epoch` these stats were gathered at;
    /// `None` for `Stats::default()`. Serving layers use this to reuse a
    /// gather across prepares of an unchanged database.
    epoch: Option<u64>,
}

const DEFAULT_EXTENT: f64 = 1_000.0;
const DEFAULT_FANOUT: f64 = 10.0;
const EQ_SELECTIVITY: f64 = 0.1;
const CMP_SELECTIVITY: f64 = 0.5;
/// How deep the catalog walk follows collection-valued fields.
const CATALOG_DEPTH: usize = 3;

/// `var → collection name` — which extent or field each plan/generator
/// variable ranges over, resolved structurally. This is the context the
/// refined selectivity model needs to look up attribute facts.
type SourceMap = HashMap<Symbol, Symbol>;

impl Stats {
    /// Scan the database once: extent sizes, per-field average fan-outs,
    /// and the attribute-level catalog (distinct counts, max frequencies,
    /// numeric domains). The gathered stats are stamped with the
    /// database's `mutation_epoch` so callers can reuse them until the
    /// next mutation.
    pub fn gather(db: &Database) -> Stats {
        let roots: Vec<(Symbol, &Value)> = db.roots().collect();
        gather_from(db.heap(), &roots, db.mutation_epoch())
    }

    /// [`Stats::gather`] over an immutable [`Snapshot`] — the same scan,
    /// stamped with the snapshot's *pinned* epoch, so a serving layer can
    /// key stats reuse off `(instance_id, epoch)` without holding any
    /// lock on the live database.
    pub fn gather_snapshot(snap: &Snapshot) -> Stats {
        let roots: Vec<(Symbol, &Value)> = snap.roots().collect();
        gather_from(snap.heap(), &roots, snap.epoch())
    }

    /// The attribute-level fact catalog (for the core abstract
    /// interpreter).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The `mutation_epoch` this gather observed, if any.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Estimated output cardinality of every operator in `plan`, indexed
    /// by pre-order position (root = 0, a unary operator's input at
    /// `op + 1`, a join's right child after the whole left subtree) — the
    /// same numbering `explain` and the executor's probes use. These are
    /// the estimates `explain_analyze` prints next to observed rows.
    pub fn plan_estimates(&self, plan: &crate::logical::Plan) -> Vec<f64> {
        let mut ctx = SourceMap::new();
        plan_sources(plan, &mut ctx);
        let mut out = vec![0.0; plan.node_count()];
        self.estimate_into(plan, 0, &mut out, &ctx);
        out
    }

    /// Per-operator estimates for a whole [`Query`](crate::logical::Query):
    /// [`Stats::plan_estimates`] refined by the reduction monoid. A `some`
    /// reduction absorbs on its *first witness* — exists-style queries are
    /// selective by design, so the true row count lands anywhere in
    /// `[1, est]` and the geometric midpoint `√est` minimizes the
    /// worst-case q-error over that interval. `all` also short-circuits,
    /// but only on a counterexample; invariant-style queries typically
    /// scan to completion, so damping them would trade a rare improvement
    /// for a routine misestimate (the corpus audit confirms: `forall`
    /// queries sit at q-error 1.0 undamped).
    pub fn query_estimates(&self, query: &crate::logical::Query) -> Vec<f64> {
        let mut out = self.plan_estimates(&query.plan);
        if monoid_short_circuits(&query.monoid)
            && query.monoid == monoid_calculus::monoid::Monoid::Some
        {
            for e in &mut out {
                if *e > 1.0 {
                    *e = e.sqrt();
                }
            }
        }
        out
    }

    /// Fill `out[op]` with the estimate for `plan` and return it.
    fn estimate_into(
        &self,
        plan: &crate::logical::Plan,
        op: usize,
        out: &mut [f64],
        ctx: &SourceMap,
    ) -> f64 {
        use crate::logical::Plan;
        let est = match plan {
            Plan::Scan { source, .. } => self.source_cardinality(source),
            Plan::IndexLookup { index, .. } => {
                // One key's share of the indexed extent.
                index.len() as f64 / index.distinct_keys().max(1) as f64
            }
            Plan::Unnest { input, path, .. } => {
                // `source_cardinality` of a projection is its per-object
                // fan-out, which is exactly the unnest multiplier.
                self.estimate_into(input, op + 1, out, ctx) * self.source_cardinality(path)
            }
            Plan::Filter { input, pred } => {
                self.estimate_into(input, op + 1, out, ctx) * self.selectivity(pred, ctx)
            }
            Plan::Bind { input, .. } => self.estimate_into(input, op + 1, out, ctx),
            Plan::Join { left, right, on, .. } => {
                let l = self.estimate_into(left, op + 1, out, ctx);
                let r = self.estimate_into(right, op + 1 + left.node_count(), out, ctx);
                // Each equi-key pair filters the cross product like an
                // equality predicate; no keys means a cross product.
                let mut est = l * r;
                for (lk, rk) in on {
                    est *= self.equality_selectivity(lk, Some(rk), ctx);
                }
                est
            }
            Plan::HashProbe { left, table, on_left } => {
                // The build side is materialized: its cardinality is exact.
                let l = self.estimate_into(left, op + 1, out, ctx);
                let mut est = l * table.rows.len() as f64;
                for lk in on_left {
                    est *= self.equality_selectivity(lk, None, ctx);
                }
                est
            }
        };
        out[op] = est;
        est
    }

    /// Estimated cardinality of a generator source.
    fn source_cardinality(&self, src: &Expr) -> f64 {
        match src {
            Expr::Var(name) => self
                .extent_sizes
                .get(name)
                .copied()
                .unwrap_or(DEFAULT_EXTENT),
            Expr::Proj(_, field) => {
                self.fanouts.get(field).copied().unwrap_or(DEFAULT_FANOUT)
            }
            Expr::CollLit(_, items) => items.len() as f64,
            Expr::UnOp(_, inner) => self.source_cardinality(inner),
            _ => DEFAULT_EXTENT,
        }
    }

    /// Attribute facts for `e` when it is a `v.attr` path over a variable
    /// whose collection is known.
    fn path_facts(&self, e: &Expr, ctx: &SourceMap) -> Option<&AttrFacts> {
        let Expr::Proj(inner, attr) = e else { return None };
        let Expr::Var(v) = inner.as_ref() else { return None };
        let coll = ctx.get(v)?;
        self.catalog.attr(*coll, *attr)
    }

    /// Selectivity of an equality between `a` and (when present) `b`.
    /// With gathered facts, equality on an attribute keeps `1/distinct`
    /// of the rows on average; a two-sided equi-key takes the larger
    /// distinct count (the classic join estimate). Falls back to the flat
    /// default when nothing is known.
    fn equality_selectivity(&self, a: &Expr, b: Option<&Expr>, ctx: &SourceMap) -> f64 {
        let da = self.path_facts(a, ctx).map(|f| f.distinct.max(1));
        let db = b.and_then(|b| self.path_facts(b, ctx)).map(|f| f.distinct.max(1));
        match (da, db) {
            (Some(x), Some(y)) => 1.0 / x.max(y) as f64,
            (Some(x), None) | (None, Some(x)) => 1.0 / x as f64,
            (None, None) => EQ_SELECTIVITY,
        }
    }

    /// Refined predicate selectivity: attribute facts where known, the
    /// classic independence combinators elsewhere.
    fn selectivity(&self, p: &Expr, ctx: &SourceMap) -> f64 {
        match p {
            Expr::BinOp(BinOp::And, a, b) => self.selectivity(a, ctx) * self.selectivity(b, ctx),
            Expr::BinOp(BinOp::Or, a, b) => {
                let (sa, sb) = (self.selectivity(a, ctx), self.selectivity(b, ctx));
                sa + sb - sa * sb
            }
            Expr::UnOp(UnOp::Not, inner) => 1.0 - self.selectivity(inner, ctx),
            Expr::Lit(Literal::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::BinOp(BinOp::Eq, a, b) => self.equality_selectivity(a, Some(b), ctx),
            Expr::BinOp(op, a, b) if op.is_comparison() => self
                .range_selectivity(*op, a, b, ctx)
                .unwrap_or(CMP_SELECTIVITY),
            _ => CMP_SELECTIVITY,
        }
    }

    /// Interpolated selectivity of `path <op> constant` against the
    /// attribute's gathered numeric domain, assuming a uniform spread.
    fn range_selectivity(&self, op: BinOp, a: &Expr, b: &Expr, ctx: &SourceMap) -> Option<f64> {
        let (path, lit, op) = if let Some(x) = numeric_literal(b) {
            (a, x, op)
        } else if let Some(x) = numeric_literal(a) {
            (b, x, flip_comparison(op))
        } else {
            return None;
        };
        let facts = self.path_facts(path, ctx)?;
        let (mn, mx) = (facts.min?, facts.max?);
        let width = (mx - mn).max(f64::EPSILON);
        let below = ((lit - mn) / width).clamp(0.0, 1.0);
        Some(match op {
            BinOp::Lt | BinOp::Le => below,
            BinOp::Gt | BinOp::Ge => 1.0 - below,
            _ => return None,
        })
    }
}

fn numeric_literal(e: &Expr) -> Option<f64> {
    match e {
        Expr::Lit(Literal::Int(i)) => Some(*i as f64),
        Expr::Lit(Literal::Float(x)) => Some(*x),
        _ => None,
    }
}

/// `c < path` is `path > c`, etc.
fn flip_comparison(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Resolve which collection each plan variable ranges over (extents by
/// root name, dependent paths by field name).
fn plan_sources(plan: &crate::logical::Plan, ctx: &mut SourceMap) {
    use crate::logical::Plan;
    match plan {
        Plan::Scan { var, source } => {
            if let Some(key) = source_key(source) {
                ctx.insert(*var, key);
            }
        }
        Plan::Unnest { input, var, path } => {
            plan_sources(input, ctx);
            if let Some(key) = source_key(path) {
                ctx.insert(*var, key);
            }
        }
        Plan::Filter { input, .. } | Plan::Bind { input, .. } => plan_sources(input, ctx),
        Plan::Join { left, right, .. } => {
            plan_sources(left, ctx);
            plan_sources(right, ctx);
        }
        Plan::IndexLookup { .. } => {}
        Plan::HashProbe { left, .. } => plan_sources(left, ctx),
    }
}

/// The catalog key a generator source resolves to: extents by name,
/// dependent paths by field name.
fn source_key(src: &Expr) -> Option<Symbol> {
    match src {
        Expr::Var(name) => Some(*name),
        Expr::Proj(_, field) => Some(*field),
        Expr::UnOp(_, inner) => source_key(inner),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Catalog gathering
// ---------------------------------------------------------------------------

/// The shared body of [`Stats::gather`] and [`Stats::gather_snapshot`]:
/// everything a gather reads is in the `(heap, roots)` pair, which both a
/// live database and a pinned snapshot can produce.
fn gather_from(heap: &Heap, roots: &[(Symbol, &Value)], epoch: u64) -> Stats {
    let mut extent_sizes = HashMap::new();
    for (name, value) in roots {
        if let Ok(n) = value.len() {
            extent_sizes.insert(*name, n as f64);
        }
    }
    let mut sums: HashMap<Symbol, (f64, f64)> = HashMap::new();
    for (_, state) in heap.iter() {
        if let Value::Record(fields) = state {
            for (name, fv) in fields.iter() {
                if let Ok(n) = fv.len() {
                    let entry = sums.entry(*name).or_insert((0.0, 0.0));
                    entry.0 += n as f64;
                    entry.1 += 1.0;
                }
            }
        }
    }
    let fanouts = sums
        .into_iter()
        .map(|(name, (total, count))| (name, total / count.max(1.0)))
        .collect();
    let catalog = gather_catalog(heap, roots);
    Stats { extent_sizes, fanouts, catalog, epoch: Some(epoch) }
}

/// Walk the database roots (and the collections reachable from their
/// element records, up to [`CATALOG_DEPTH`]) gathering per-attribute
/// domain facts for the abstract interpreter.
fn gather_catalog(heap: &Heap, roots: &[(Symbol, &Value)]) -> Catalog {
    let mut catalog = Catalog::default();
    for (name, value) in roots {
        let Ok(elems) = value.elements() else { continue };
        let mut ext = ExtentFacts { size: elems.len() as u64, ..Default::default() };
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        ext.distinct_elements = elems.iter().all(|e| seen.insert(e.clone()));
        collect_collection(heap, &elems, 0, &mut ext.attrs, &mut catalog.fields);
        catalog.extents.insert(*name, ext);
    }
    catalog
}

/// Gather attribute facts for the element records of one collection, and
/// fan-out facts (plus nested attribute facts) for their collection-valued
/// fields.
fn collect_collection(
    heap: &Heap,
    elems: &[Value],
    depth: usize,
    attrs_out: &mut BTreeMap<Symbol, AttrFacts>,
    fields_out: &mut BTreeMap<Symbol, monoid_calculus::analysis::constraints::FieldFacts>,
) {
    let mut freqs: BTreeMap<Symbol, BTreeMap<Value, u64>> = BTreeMap::new();
    let mut domains: BTreeMap<Symbol, (Option<f64>, Option<f64>, bool)> = BTreeMap::new();
    let mut children: BTreeMap<Symbol, Vec<Value>> = BTreeMap::new();
    for elem in elems {
        let fields: &[(Symbol, Value)] = match elem {
            Value::Record(fields) => fields,
            Value::Obj(oid) => match heap.get(*oid) {
                Ok(Value::Record(fields)) => fields,
                _ => continue,
            },
            _ => continue,
        };
        for (fname, fv) in fields {
            match fv {
                Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_) => {
                    *freqs.entry(*fname).or_default().entry(fv.clone()).or_insert(0) += 1;
                    let dom = domains.entry(*fname).or_insert((None, None, true));
                    match fv {
                        Value::Int(i) => {
                            let x = *i as f64;
                            dom.0 = Some(dom.0.map_or(x, |m: f64| m.min(x)));
                            dom.1 = Some(dom.1.map_or(x, |m: f64| m.max(x)));
                        }
                        Value::Float(x) => {
                            dom.0 = Some(dom.0.map_or(*x, |m: f64| m.min(*x)));
                            dom.1 = Some(dom.1.map_or(*x, |m: f64| m.max(*x)));
                        }
                        _ => dom.2 = false,
                    }
                }
                _ => {
                    if let Ok(n) = fv.len() {
                        let f = fields_out.entry(*fname).or_default();
                        let n = n as u64;
                        f.min_fanout = if f.occurrences == 0 { n } else { f.min_fanout.min(n) };
                        f.max_fanout = f.max_fanout.max(n);
                        f.occurrences += 1;
                        f.total += n;
                        if depth < CATALOG_DEPTH {
                            if let Ok(kids) = fv.elements() {
                                children.entry(*fname).or_default().extend(kids);
                            }
                        }
                    }
                }
            }
        }
    }
    for (fname, freq) in freqs {
        let count = freq.values().sum();
        let max_freq = freq.values().copied().max().unwrap_or(0);
        let (min, max) = match domains.get(&fname) {
            Some((mn, mx, true)) => (*mn, *mx),
            _ => (None, None),
        };
        attrs_out.insert(
            fname,
            AttrFacts { count, distinct: freq.len() as u64, max_freq, min, max },
        );
    }
    for (fname, kids) in children {
        // Recurse into the nested collection's elements, accumulating into
        // the field's own attribute table (taken out to appease borrows).
        let mut sub_attrs =
            std::mem::take(&mut fields_out.get_mut(&fname).expect("field recorded").attrs);
        collect_collection(heap, &kids, depth + 1, &mut sub_attrs, fields_out);
        fields_out.get_mut(&fname).expect("field recorded").attrs = sub_attrs;
    }
}

/// Reorder the qualifiers of a canonical comprehension by estimated cost.
/// Returns the (possibly) reordered expression; non-comprehensions,
/// non-commutative monoids, and impure terms come back unchanged.
pub fn reorder_generators(e: &Expr, stats: &Stats) -> Expr {
    let Expr::Comp { monoid, head, quals } = e else { return e.clone() };
    // Reordering permutes evaluation order, so it is licensed only for
    // commutative monoids over effect-free terms; the static classifier
    // (`analysis::effects_of`) agrees with `normalize::is_pure` by
    // construction and is what every other stage consults.
    if !monoid.props().commutative || !monoid_calculus::analysis::effects_of(e).is_pure() {
        return e.clone();
    }
    // Split into generators / binds / preds, remembering dependencies.
    let mut gens: Vec<(Symbol, Expr)> = Vec::new();
    let mut binds: Vec<(Symbol, Expr)> = Vec::new();
    let mut preds: Vec<Expr> = Vec::new();
    for q in quals {
        match q {
            Qual::Gen(v, s) => gens.push((*v, s.clone())),
            Qual::Bind(v, s) => binds.push((*v, s.clone())),
            Qual::Pred(p) => preds.push(p.clone()),
            Qual::VecGen { .. } => return e.clone(),
        }
    }

    // Variables bound by this comprehension's own binders; anything else
    // free in a source (extent roots, outer variables) is always
    // available.
    let all_binders: HashSet<Symbol> = gens
        .iter()
        .map(|(v, _)| *v)
        .chain(binds.iter().map(|(v, _)| *v))
        .collect();
    let ready = |e: &Expr, bound: &HashSet<Symbol>| {
        free_vars(e)
            .iter()
            .all(|x| !all_binders.contains(x) || bound.contains(x))
    };

    // Resolve each generator variable's collection up front so predicate
    // costing can consult gathered attribute facts regardless of order.
    let mut src_ctx = SourceMap::new();
    for (v, src) in &gens {
        if let Some(key) = source_key(src) {
            src_ctx.insert(*v, key);
        }
    }

    let mut ordered: Vec<Qual> = Vec::with_capacity(quals.len());
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut remaining_gens = gens;
    let mut remaining_binds = binds;
    let mut remaining_preds = preds;

    while !remaining_gens.is_empty() || !remaining_binds.is_empty() {
        // Place binds and predicates that are ready (cheap first).
        loop {
            let mut progressed = false;
            remaining_binds.retain(|(v, s)| {
                if ready(s, &bound) {
                    ordered.push(Qual::Bind(*v, s.clone()));
                    bound.insert(*v);
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            remaining_preds.retain(|p| {
                if ready(p, &bound) {
                    ordered.push(Qual::Pred(p.clone()));
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                break;
            }
        }
        if remaining_gens.is_empty() {
            if remaining_binds.is_empty() {
                break;
            }
            // A bind whose variables can never be bound — malformed input;
            // give up and return the original.
            return e.clone();
        }
        // Pick the cheapest available generator.
        let mut best: Option<(usize, f64)> = None;
        for (i, (_, src)) in remaining_gens.iter().enumerate() {
            if !ready(src, &bound) {
                continue;
            }
            let mut cost = stats.source_cardinality(src);
            // Predicates that become applicable once this generator binds
            // shrink the effective cardinality.
            let (var, _) = &remaining_gens[i];
            for p in &remaining_preds {
                let fv = free_vars(p);
                let applicable = fv.contains(var)
                    && fv.iter().all(|x| {
                        *x == *var || !all_binders.contains(x) || bound.contains(x)
                    });
                if applicable {
                    cost *= stats.selectivity(p, &src_ctx);
                }
            }
            match best {
                Some((_, c)) if c <= cost => {}
                _ => best = Some((i, cost)),
            }
        }
        let Some((i, _)) = best else {
            // No generator is available: dependency cycle (impossible for
            // well-formed input) — bail out.
            return e.clone();
        };
        let (var, src) = remaining_gens.remove(i);
        ordered.push(Qual::Gen(var, src));
        bound.insert(var);
    }
    // Any stragglers (shouldn't happen on well-formed input).
    for p in remaining_preds {
        ordered.push(Qual::Pred(p));
    }

    Expr::Comp { monoid: monoid.clone(), head: head.clone(), quals: ordered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn stats_measure_extents_and_fanouts() {
        let scale = TravelScale::tiny();
        let db = travel::generate(scale, 3);
        let stats = Stats::gather(&db);
        assert_eq!(
            stats.extent_sizes.get(&Symbol::new("Cities")).copied(),
            Some(scale.cities as f64)
        );
        let rooms_fanout = stats.fanouts.get(&Symbol::new("rooms")).copied().unwrap();
        assert!((rooms_fanout - scale.rooms_per_hotel as f64).abs() < 1e-9);
    }

    #[test]
    fn plan_estimates_follow_preorder() {
        let scale = TravelScale::tiny();
        let db = travel::generate(scale, 3);
        let stats = Stats::gather(&db);
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let plan = crate::logical::plan_comprehension(&q).unwrap().plan;
        let est = stats.plan_estimates(&plan);
        assert_eq!(est.len(), plan.node_count());
        // The plan is Unnest(Filter(Scan)), so pre-order is [unnest,
        // filter, scan]: the scan sees the whole extent, the equality on
        // `name` keeps 1/distinct of the rows (city names are unique, so
        // 1/|Cities|), the unnest multiplies by the fan-out.
        assert_eq!(est[2], scale.cities as f64);
        assert!((est[1] - est[2] / scale.cities as f64).abs() < 1e-9, "{est:?}");
        let fanout = stats.fanouts[&Symbol::new("hotels")];
        assert!((est[0] - est[1] * fanout).abs() < 1e-9, "{est:?}");
    }

    #[test]
    fn smaller_extent_scans_first() {
        let mut db = travel::generate(TravelScale::tiny(), 3);
        let stats = Stats::gather(&db);
        // Clients (5) × Employees (12): employees should not lead.
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("e", Expr::var("Employees")),
                Expr::gen("cl", Expr::var("Clients")),
            ],
        );
        let r = reorder_generators(&q, &stats);
        let Expr::Comp { quals, .. } = &r else { panic!() };
        let Qual::Gen(first, _) = &quals[0] else { panic!() };
        assert_eq!(*first, Symbol::new("cl"), "smaller extent first");
        // Same result either way.
        assert_eq!(db.query(&q).unwrap(), db.query(&r).unwrap());
    }

    #[test]
    fn selective_predicates_pull_their_generator_forward() {
        let db = travel::generate(TravelScale::tiny(), 3);
        let stats = Stats::gather(&db);
        // Clients (5) vs Cities (3) with an equality filter on cities:
        // cities effective cost 3·0.1 < 5 — cities lead despite... they
        // already lead by size; use Hotels (6) vs Clients (5): hotels with
        // an equality shrink to 0.6 and overtake clients.
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("cl", Expr::var("Clients")),
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(Expr::var("h").proj("name").eq(Expr::str("hotel_0_0"))),
            ],
        );
        let r = reorder_generators(&q, &stats);
        let Expr::Comp { quals, .. } = &r else { panic!() };
        let Qual::Gen(first, _) = &quals[0] else { panic!() };
        assert_eq!(*first, Symbol::new("h"));
        // The equality predicate lands immediately after its generator.
        assert!(matches!(&quals[1], Qual::Pred(_)));
    }

    #[test]
    fn dependencies_are_respected() {
        let mut db = travel::generate(TravelScale::tiny(), 3);
        let stats = Stats::gather(&db);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::gen("h", Expr::var("c").proj("hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let r = reorder_generators(&q, &stats);
        // h must still come after c, r after h.
        let Expr::Comp { quals, .. } = &r else { panic!() };
        let order: Vec<Symbol> = quals
            .iter()
            .filter_map(|q| match q {
                Qual::Gen(v, _) => Some(*v),
                _ => None,
            })
            .collect();
        let pos = |s: &str| order.iter().position(|v| *v == Symbol::new(s)).unwrap();
        assert!(pos("c") < pos("h"));
        assert!(pos("h") < pos("r"));
        assert_eq!(db.query(&q).unwrap(), db.query(&r).unwrap());
    }

    #[test]
    fn non_commutative_monoids_untouched() {
        let stats = Stats::default();
        let q = Expr::comp(
            Monoid::List,
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::list_of(vec![Expr::int(2), Expr::int(1)])),
                Expr::gen("y", Expr::list_of(vec![Expr::int(3)])),
            ],
        );
        assert_eq!(reorder_generators(&q, &stats), q);
    }

    #[test]
    fn impure_comprehensions_untouched() {
        let stats = Stats::default();
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("x").deref(),
            vec![Expr::gen("x", Expr::new_obj(Expr::int(1)))],
        );
        assert_eq!(reorder_generators(&q, &stats), q);
    }

    #[test]
    fn reordering_plus_planning_agree_with_baseline() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let stats = Stats::gather(&db);
        let q = Expr::comp(
            Monoid::Set,
            Expr::var("cl").proj("name"),
            vec![
                Expr::gen("e", Expr::var("Employees")),
                Expr::gen("cl", Expr::var("Clients")),
                Expr::pred(
                    Expr::var("e").proj("salary").gt(Expr::int(50_000)),
                ),
                Expr::pred(Expr::var("cl").proj("age").gt(Expr::int(30))),
            ],
        );
        let base = db.query(&q).unwrap();
        let r = reorder_generators(&q, &stats);
        let plan = crate::logical::plan_comprehension(&r).unwrap();
        let piped = crate::exec::execute(&plan, &mut db).unwrap();
        assert_eq!(base, piped);
    }
}
