//! Push-based (pipelined) execution of algebra plans.
//!
//! Plans compile to a driver that pushes variable bindings through the
//! operator pipeline — scans and unnests never materialize intermediate
//! collections, which is precisely the pipelining opportunity the paper
//! says canonical forms maximize. The only materialization points are hash
//! join build sides and the final `Reduce` accumulator.
//!
//! `some`/`all` reductions short-circuit the entire pipeline through the
//! sink's `false` return, mirroring the evaluator.
//!
//! The driver is generic over a [`Probe`]: a set of per-operator counter
//! hooks. [`NoProbe`] (the default used by [`execute`]) monomorphizes
//! every hook to an empty inline function, so the unprofiled pipeline pays
//! nothing — no per-row allocation, no branch on a runtime flag. The
//! profiled entry point lives in [`crate::trace`] and threads a
//! `Cell`-based probe through the same code.

use crate::error::ExecResult;
use crate::logical::{JoinKind, Plan, Query};
use monoid_calculus::error::EvalError;
use monoid_calculus::eval::Evaluator;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::{self, Env, Value};
use monoid_store::{Database, Snapshot};
use std::collections::BTreeMap;
use std::time::Instant;

/// Per-operator instrumentation hooks. Operators are identified by their
/// pre-order index in the plan tree (root = 0; a unary operator's input is
/// `op + 1`; a join's left child is `op + 1` and its right child is
/// `op + 1 + left.node_count()`) — the same order `explain` renders them.
///
/// All hooks take `&self` so a single shared probe can be captured by the
/// nested sink closures; implementations use interior mutability.
pub trait Probe {
    /// `true` enables the timing instrumentation around operator-local
    /// work. Counter hooks are called unconditionally — a disabled
    /// probe's empty inline bodies compile to nothing.
    const ENABLED: bool;

    /// `true` when the counter hooks (`row_out`, `build_rows`) carry
    /// meaning even with timing disabled — the metering probe's case.
    /// The parallel driver only routes partitions through the fused
    /// engine when the probe does *not* count: a fused partition is one
    /// flat fold with no per-operator row attribution to feed the hooks.
    const COUNTS: bool = true;

    /// One row was pushed out of operator `op` into its consumer.
    #[inline(always)]
    fn row_out(&self, _op: usize) {}

    /// Operator `op` materialized `n` build-side rows (joins).
    #[inline(always)]
    fn build_rows(&self, _op: usize, _n: u64) {}

    /// `nanos` of operator-local work (source/predicate/path evaluation,
    /// hash build) attributable to `op` alone.
    #[inline(always)]
    fn self_nanos(&self, _op: usize, _nanos: u64) {}

    /// Evaluator steps (AST-node visits) the operator-local work of `op`
    /// consumed — the per-row dispatch-overhead proxy the plan-quality
    /// audit divides by row counts. Only fires when [`Probe::ENABLED`].
    #[inline(always)]
    fn eval_steps(&self, _op: usize, _steps: u64) {}

    /// Heap mutations (allocations/sets, measured as the [`Heap`
    /// version](monoid_calculus::heap::Heap::version) delta) the
    /// operator-local work of `op` performed. Only fires when
    /// [`Probe::ENABLED`].
    #[inline(always)]
    fn heap_allocs(&self, _op: usize, _n: u64) {}

    /// The reduction absorbed (`some`/`all`) and cut the pipeline short.
    #[inline(always)]
    fn short_circuit(&self) {}
}

/// The zero-cost probe: profiling off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;
    const COUNTS: bool = false;
}

/// Run operator-local evaluator work and charge its wall-clock time,
/// evaluator steps, and heap-mutation delta to `op` — only when the probe
/// type asks for it, so `NoProbe` (and `MetricsProbe`, `ENABLED = false`)
/// pipelines never touch the clock or the counters. For compound work
/// (join builds) the deltas include the nested child operators' work,
/// exactly like `self_nanos` always has.
#[inline]
fn timed_eval<P: Probe, R>(
    probe: &P,
    op: usize,
    ev: &mut Evaluator,
    f: impl FnOnce(&mut Evaluator) -> R,
) -> R {
    if P::ENABLED {
        let steps_before = ev.steps_used();
        let heap_before = ev.heap.version();
        let start = Instant::now();
        let out = f(ev);
        probe.self_nanos(op, start.elapsed().as_nanos() as u64);
        probe.eval_steps(op, ev.steps_used().saturating_sub(steps_before));
        probe.heap_allocs(op, ev.heap.version().saturating_sub(heap_before));
        out
    } else {
        f(ev)
    }
}

/// Take the heap out of `db`, run `f` with a fresh evaluator over it, and
/// put the (possibly mutated) heap back — the single shared shape of every
/// execution entry point. `params` are late-bound `$name` values layered
/// over the persistent roots; their `$`-prefixed symbols can never shadow
/// a root or a query variable.
fn with_evaluator<R>(
    db: &mut Database,
    params: &[(Symbol, Value)],
    f: impl FnOnce(&mut Evaluator, &Env) -> ExecResult<R>,
) -> ExecResult<R> {
    let env = bind_params(db.env(), params);
    let heap = std::mem::take(db.heap_mut());
    let mut ev = Evaluator::with_heap(heap);
    let result = f(&mut ev, &env);
    *db.heap_mut() = ev.heap;
    result
}

/// Layer parameter bindings over an environment.
pub(crate) fn bind_params(mut env: Env, params: &[(Symbol, Value)]) -> Env {
    for (p, v) in params {
        env = env.bind(*p, v.clone());
    }
    env
}

/// Re-check the plan invariants (`crate::verify`) when stage verification
/// is on; a violation aborts execution with the stage-tagged message.
fn verify_if_enabled(query: &Query, db: &Database) -> ExecResult<()> {
    if monoid_calculus::analysis::verify_enabled() {
        crate::verify::verify_query(query, db)
            .map_err(|e| EvalError::Other(e.to_string()))?;
    }
    Ok(())
}

/// Run a query against a database, returning the reduced value.
pub fn execute(query: &Query, db: &mut Database) -> ExecResult<Value> {
    execute_bound(query, db, &[])
}

/// [`execute`] with late-bound parameter values (prepared statements):
/// each `(symbol, value)` pair is bound into the root environment before
/// the plan runs, so `Expr::Param` leaves resolve per execution.
///
/// Linear scan → filter → bind → unnest chains run on the fused batch
/// engine ([`crate::fused`]); everything else walks the plan tree. The
/// engine that actually ran is noted on the flight recorder's active
/// record.
pub fn execute_bound(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
) -> ExecResult<Value> {
    verify_if_enabled(query, db)?;
    let result = with_evaluator(db, params, |ev, env| {
        if let Some(v) = crate::fused::try_run_reduce(query, ev, env)? {
            monoid_calculus::recorder::note_engine(crate::fused::Engine::Fused.as_str());
            return Ok(v);
        }
        monoid_calculus::recorder::note_engine(crate::fused::Engine::PlanWalk.as_str());
        run_reduce(query, ev, env, &NoProbe)
    });
    if let Ok(v) = &result {
        monoid_calculus::recorder::note_result(v);
    }
    result
}

/// Run a query while *forcing* the plan-walk interpreter, even for
/// queries the fused engine covers — the ablation baseline `regress`
/// measures the fused speedup against, and the reference side of the
/// differential fused ≡ plan-walk equivalence tests.
pub fn execute_plan_walk(query: &Query, db: &mut Database) -> ExecResult<Value> {
    execute_plan_walk_bound(query, db, &[])
}

/// [`execute_plan_walk`] with late-bound parameter values.
pub fn execute_plan_walk_bound(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
) -> ExecResult<Value> {
    verify_if_enabled(query, db)?;
    with_evaluator(db, params, |ev, env| run_reduce(query, ev, env, &NoProbe))
}

/// Try the fused engine alone: `Ok(None)` when the query is outside the
/// fusible subset, leaving the caller to pick (and report) its own
/// fallback. Used by the parallel driver's sequential-fallback leg, which
/// must keep its probe-based plan walk for metered runs.
pub(crate) fn try_execute_fused_bound(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
) -> ExecResult<Option<Value>> {
    with_evaluator(db, params, |ev, env| crate::fused::try_run_reduce(query, ev, env))
}

/// Run a query and report evaluation steps (cost proxy for benchmarks).
pub fn execute_counted(query: &Query, db: &mut Database) -> ExecResult<(Value, u64)> {
    execute_counted_bound(query, db, &[])
}

/// [`execute_counted`] with late-bound parameter values.
pub fn execute_counted_bound(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
) -> ExecResult<(Value, u64)> {
    verify_if_enabled(query, db)?;
    with_evaluator(db, params, |ev, env| {
        let v = run_reduce(query, ev, env, &NoProbe)?;
        Ok((v, ev.steps_used()))
    })
}

/// The snapshot twin of [`with_evaluator`]: build the evaluator over an
/// O(1) copy-on-write clone of the snapshot's pinned heap. The clone is
/// discarded afterwards, so even if a plan expression somehow allocated,
/// nothing would leak back into shared state — the snapshot stays
/// bit-for-bit what it was.
fn with_snapshot_evaluator<R>(
    snap: &Snapshot,
    params: &[(Symbol, Value)],
    f: impl FnOnce(&mut Evaluator, &Env) -> ExecResult<R>,
) -> ExecResult<R> {
    let env = bind_params(snap.env(), params);
    let mut ev = Evaluator::with_heap(snap.heap().clone());
    f(&mut ev, &env)
}

/// [`verify_if_enabled`] for snapshot reads: index freshness is checked
/// against the snapshot's *pinned* epoch, not the live database's — a
/// plan whose indexes match the pinned state is valid no matter how far
/// the writer has advanced since.
fn verify_snapshot_if_enabled(query: &Query, snap: &Snapshot) -> ExecResult<()> {
    if monoid_calculus::analysis::verify_enabled() {
        crate::verify::verify_query_at(query, snap.epoch())
            .map_err(|e| EvalError::Other(e.to_string()))?;
    }
    Ok(())
}

/// Run a query against an immutable [`Snapshot`] — the concurrent-read
/// entry point. Any number of threads may call this against clones of the
/// same snapshot while a writer keeps committing new epochs; the result
/// is byte-identical to [`execute`] against the database at the
/// snapshot's epoch (property-tested in `tests/concurrent_reads.rs`).
pub fn execute_snapshot(query: &Query, snap: &Snapshot) -> ExecResult<Value> {
    execute_snapshot_bound(query, snap, &[])
}

/// [`execute_snapshot`] with late-bound parameter values. Routes through
/// the fused batch engine exactly like [`execute_bound`], falling back to
/// the plan walk, and notes the chosen engine on the flight recorder.
pub fn execute_snapshot_bound(
    query: &Query,
    snap: &Snapshot,
    params: &[(Symbol, Value)],
) -> ExecResult<Value> {
    verify_snapshot_if_enabled(query, snap)?;
    let result = with_snapshot_evaluator(snap, params, |ev, env| {
        if let Some(v) = crate::fused::try_run_reduce(query, ev, env)? {
            monoid_calculus::recorder::note_engine(crate::fused::Engine::Fused.as_str());
            return Ok(v);
        }
        monoid_calculus::recorder::note_engine(crate::fused::Engine::PlanWalk.as_str());
        run_reduce(query, ev, env, &NoProbe)
    });
    if let Ok(v) = &result {
        monoid_calculus::recorder::note_result(v);
    }
    result
}

/// Run a query with a caller-supplied probe and late-bound parameter
/// values; also reports evaluation steps. This is the entry the profiler
/// in [`crate::trace`] and the metered executors use.
pub(crate) fn execute_probed_bound<P: Probe>(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
    probe: &P,
) -> ExecResult<(Value, u64)> {
    verify_if_enabled(query, db)?;
    let result = with_evaluator(db, params, |ev, env| {
        let v = run_reduce(query, ev, env, probe)?;
        Ok((v, ev.steps_used()))
    });
    if let Ok((v, _)) = &result {
        monoid_calculus::recorder::note_result(v);
    }
    result
}

fn run_reduce<P: Probe>(
    query: &Query,
    ev: &mut Evaluator,
    env: &Env,
    probe: &P,
) -> ExecResult<Value> {
    let monoid = &query.monoid;
    let mut acc = value::Accumulator::new(monoid)?;
    let completed = run_plan(&query.plan, 0, ev, env, probe, &mut |ev, row_env| {
        let h = ev.eval(row_env, &query.head)?;
        acc.push_unit(h)?;
        Ok(!acc.absorbed())
    })?;
    if !completed {
        probe.short_circuit();
    }
    acc.finish()
}

/// Push every row of `plan` into `sink`; a `false` from the sink
/// short-circuits. Returns `false` if short-circuited. `op` is this
/// node's pre-order index (see [`Probe`]).
pub(crate) fn run_plan<P: Probe>(
    plan: &Plan,
    op: usize,
    ev: &mut Evaluator,
    env: &Env,
    probe: &P,
    sink: &mut dyn FnMut(&mut Evaluator, &Env) -> ExecResult<bool>,
) -> ExecResult<bool> {
    match plan {
        Plan::Scan { var, source } => {
            let sv = timed_eval(probe, op, ev, |ev| ev.eval(env, source))?;
            for elem in collection_elements(&sv)? {
                probe.row_out(op);
                if !sink(ev, &env.bind(*var, elem))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::IndexLookup { var, index, key } => {
            let kv = timed_eval(probe, op, ev, |ev| ev.eval(env, key))?;
            for member in index.lookup(&kv) {
                probe.row_out(op);
                if !sink(ev, &env.bind(*var, member.clone()))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Unnest { input, var, path } => {
            run_plan(input, op + 1, ev, env, probe, &mut |ev, row| {
                let sv = timed_eval(probe, op, ev, |ev| ev.eval(row, path))?;
                for elem in collection_elements(&sv)? {
                    probe.row_out(op);
                    if !sink(ev, &row.bind(*var, elem))? {
                        return Ok(false);
                    }
                }
                Ok(true)
            })
        }
        Plan::Filter { input, pred } => {
            run_plan(input, op + 1, ev, env, probe, &mut |ev, row| {
                if timed_eval(probe, op, ev, |ev| ev.eval(row, pred))?.as_bool()? {
                    probe.row_out(op);
                    sink(ev, row)
                } else {
                    Ok(true)
                }
            })
        }
        Plan::Bind { input, var, expr } => {
            run_plan(input, op + 1, ev, env, probe, &mut |ev, row| {
                let v = timed_eval(probe, op, ev, |ev| ev.eval(row, expr))?;
                probe.row_out(op);
                sink(ev, &row.bind(*var, v))
            })
        }
        Plan::Join { left, right, on, kind } => {
            let right_op = op + 1 + left.node_count();
            match kind {
                JoinKind::NestedLoop => {
                    // Materialize the right side's binding deltas once, then
                    // stream the left.
                    let right_rows =
                        timed_eval(probe, op, ev, |ev| materialize(right, right_op, ev, env, probe))?;
                    probe.build_rows(op, right_rows.len() as u64);
                    let on = on.clone();
                    let mut scratch = value::ScratchRow::new();
                    run_plan(left, op + 1, ev, env, probe, &mut |ev, lrow| {
                        'rows: for delta in &right_rows {
                            let row = scratch.fill(lrow, delta);
                            for (lk, rk) in &on {
                                let lv = ev.eval(lrow, lk)?;
                                let rv = ev.eval(row, rk)?;
                                if lv != rv {
                                    continue 'rows;
                                }
                            }
                            probe.row_out(op);
                            if !sink(ev, row)? {
                                return Ok(false);
                            }
                        }
                        Ok(true)
                    })
                }
                JoinKind::Hash => {
                    // Build: key → binding deltas of the right side.
                    let (right_rows, table) = timed_eval(probe, op, ev, |ev| {
                        let right_rows = materialize(right, right_op, ev, env, probe)?;
                        let mut table: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
                        let mut scratch = value::ScratchRow::new();
                        for (i, delta) in right_rows.iter().enumerate() {
                            let row = scratch.fill(env, delta);
                            let key = on
                                .iter()
                                .map(|(_, rk)| ev.eval(row, rk))
                                .collect::<ExecResult<Vec<_>>>()?;
                            table.entry(key).or_default().push(i);
                        }
                        Ok::<_, EvalError>((right_rows, table))
                    })?;
                    probe.build_rows(op, right_rows.len() as u64);
                    // Probe with the left.
                    let mut scratch = value::ScratchRow::new();
                    run_plan(left, op + 1, ev, env, probe, &mut |ev, lrow| {
                        let key = on
                            .iter()
                            .map(|(lk, _)| ev.eval(lrow, lk))
                            .collect::<ExecResult<Vec<_>>>()?;
                        if let Some(matches) = table.get(&key) {
                            for &i in matches {
                                let row = scratch.fill(lrow, &right_rows[i]);
                                probe.row_out(op);
                                if !sink(ev, row)? {
                                    return Ok(false);
                                }
                            }
                        }
                        Ok(true)
                    })
                }
            }
        }
        Plan::HashProbe { left, table, on_left } => {
            // The build side is already materialized and shared; probe it
            // with the left rows.
            let mut scratch = value::ScratchRow::new();
            run_plan(left, op + 1, ev, env, probe, &mut |ev, lrow| {
                let key = on_left
                    .iter()
                    .map(|lk| ev.eval(lrow, lk))
                    .collect::<ExecResult<Vec<_>>>()?;
                if let Some(matches) = table.index.get(&key) {
                    for &i in matches {
                        let row = scratch.fill(lrow, &table.rows[i]);
                        probe.row_out(op);
                        if !sink(ev, row)? {
                            return Ok(false);
                        }
                    }
                }
                Ok(true)
            })
        }
    }
}

/// Materialize a sub-plan as a list of binding deltas (only the variables
/// the sub-plan itself binds).
pub(crate) fn materialize<P: Probe>(
    plan: &Plan,
    op: usize,
    ev: &mut Evaluator,
    env: &Env,
    probe: &P,
) -> ExecResult<Vec<Vec<(Symbol, Value)>>> {
    let vars = plan.bound_vars();
    let mut rows = Vec::new();
    run_plan(plan, op, ev, env, probe, &mut |_, row| {
        let delta = vars
            .iter()
            .map(|v| {
                row.lookup(*v)
                    .cloned()
                    .map(|val| (*v, val))
                    .ok_or(EvalError::UnboundVariable(*v))
            })
            .collect::<ExecResult<Vec<_>>>()?;
        rows.push(delta);
        Ok(true)
    })?;
    Ok(rows)
}

pub(crate) fn collection_elements(v: &Value) -> ExecResult<Vec<Value>> {
    // An object in generator position binds once (§4.2 idiom), matching
    // the evaluator.
    if matches!(v, Value::Obj(_)) {
        return Ok(vec![v.clone()]);
    }
    v.elements()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{plan_comprehension, plan_with_options, PlanOptions};
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    fn db() -> Database {
        travel::generate(TravelScale::tiny(), 42)
    }

    fn portland() -> Expr {
        Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
                Expr::pred(Expr::var("r").proj("bed#").eq(Expr::int(3))),
            ],
        )
    }

    #[test]
    fn pipeline_agrees_with_evaluator() {
        let mut db = db();
        let q = portland();
        let direct = db.query(&q).unwrap();
        let plan = plan_comprehension(&q).unwrap();
        let piped = execute(&plan, &mut db).unwrap();
        assert_eq!(direct, piped);
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        // bag{ (e.name, h.name) | e ← Employees, h ← Hotels,
        //                         e.salary = h.name … } is nonsense; use a
        // self-join on bed#: pairs of hotels with same first-room price.
        let mut db = db();
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Hotels")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(
                    Expr::var("a")
                        .proj("name")
                        .eq(Expr::var("b").proj("name")),
                ),
            ],
        );
        let hash = plan_comprehension(&q).unwrap();
        assert!(hash.plan.uses_hash_join());
        let nl = plan_with_options(
            &q,
            PlanOptions { hash_joins: false, push_predicates: true },
        )
        .unwrap();
        assert!(!nl.plan.uses_hash_join());
        let (vh, sh) = execute_counted(&hash, &mut db).unwrap();
        let (vn, sn) = execute_counted(&nl, &mut db).unwrap();
        assert_eq!(vh, vn);
        // Self-join on a key: hash join does strictly less work.
        assert!(sh < sn, "hash {sh} vs nested-loop {sn}");
        // Every hotel matches exactly itself.
        assert_eq!(vh, Value::Int(db.extent_len("Hotels") as i64));
    }

    #[test]
    fn short_circuits_some() {
        let mut db = db();
        let q = Expr::comp(
            Monoid::Some,
            Expr::bool(true),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (v, steps) = execute_counted(&plan, &mut db).unwrap();
        assert_eq!(v, Value::Bool(true));
        // Must stop after the first hotel, not scan all of them.
        assert!(steps < 50, "did not short-circuit: {steps} steps");
    }

    #[test]
    fn cross_product_when_no_condition() {
        let mut db = db();
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Clients")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let v = execute(&plan, &mut db).unwrap();
        let scale = TravelScale::tiny();
        assert_eq!(v, Value::Int((scale.cities * scale.clients) as i64));
    }

    #[test]
    fn snapshot_execution_matches_database_execution() {
        let mut db = db();
        let q = portland();
        let plan = plan_comprehension(&q).unwrap();
        let live = execute(&plan, &mut db).unwrap();
        let snap = db.snapshot();
        assert_eq!(execute_snapshot(&plan, &snap).unwrap(), live);

        // The snapshot keeps answering from its pinned epoch even after
        // the writer rewrites every hotel. Rooms are plain records with
        // no identity, so the assignment targets the hotel objects:
        // every hotel is renamed and given a single bed#=3 room, which
        // makes the post-mutation answer a nonempty bag of "renamed" —
        // necessarily different from the pinned one.
        let update = Expr::comp(
            Monoid::All,
            Expr::var("h").assign(Expr::record(vec![
                ("name", Expr::str("renamed")),
                ("address", Expr::var("h").proj("address")),
                ("facilities", Expr::var("h").proj("facilities")),
                ("employees", Expr::var("h").proj("employees")),
                (
                    "rooms",
                    Expr::list_of(vec![Expr::record(vec![
                        ("bed#", Expr::int(3)),
                        ("price", Expr::int(1)),
                    ])]),
                ),
            ])),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        db.query(&update).unwrap();
        assert_eq!(execute_snapshot(&plan, &snap).unwrap(), live);
        assert_ne!(execute(&plan, &mut db).unwrap(), live);
    }

    #[test]
    fn binds_execute() {
        let mut db = db();
        let q = Expr::Comp {
            monoid: Monoid::Sum,
            head: Box::new(Expr::var("two")),
            quals: vec![
                Expr::gen("c", Expr::var("Cities")),
                // An impure bind survives normalization and planning
                // rejects it; use a pure one here.
                Expr::bind("two", Expr::int(2)),
            ],
        };
        let plan = plan_comprehension(&q).unwrap();
        let v = execute(&plan, &mut db).unwrap();
        assert_eq!(v, Value::Int(2 * TravelScale::tiny().cities as i64));
    }
}
