//! Push-based (pipelined) execution of algebra plans.
//!
//! Plans compile to a driver that pushes variable bindings through the
//! operator pipeline — scans and unnests never materialize intermediate
//! collections, which is precisely the pipelining opportunity the paper
//! says canonical forms maximize. The only materialization points are hash
//! join build sides and the final `Reduce` accumulator.
//!
//! `some`/`all` reductions short-circuit the entire pipeline through the
//! sink's `false` return, mirroring the evaluator.

use crate::error::ExecResult;
use crate::logical::{JoinKind, Plan, Query};
use monoid_calculus::error::EvalError;
use monoid_calculus::eval::Evaluator;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::{self, Env, Value};
use monoid_store::Database;
use std::collections::BTreeMap;

/// Run a query against a database, returning the reduced value.
pub fn execute(query: &Query, db: &mut Database) -> ExecResult<Value> {
    let env = db.env();
    let heap = std::mem::take(db.heap_mut());
    let mut ev = Evaluator::with_heap(heap);
    let result = run_reduce(query, &mut ev, &env);
    *db.heap_mut() = ev.heap;
    result
}

/// Run a query and report evaluation steps (cost proxy for benchmarks).
pub fn execute_counted(query: &Query, db: &mut Database) -> ExecResult<(Value, u64)> {
    let env = db.env();
    let heap = std::mem::take(db.heap_mut());
    let mut ev = Evaluator::with_heap(heap);
    let result = run_reduce(query, &mut ev, &env);
    let steps = ev.steps_used();
    *db.heap_mut() = ev.heap;
    result.map(|v| (v, steps))
}

fn run_reduce(query: &Query, ev: &mut Evaluator, env: &Env) -> ExecResult<Value> {
    let monoid = &query.monoid;
    let mut acc = value::Accumulator::new(monoid)?;
    run_plan(&query.plan, ev, env, &mut |ev, row_env| {
        let h = ev.eval(row_env, &query.head)?;
        acc.push_unit(h)?;
        Ok(!acc.absorbed())
    })?;
    acc.finish()
}

/// Push every row of `plan` into `sink`; a `false` from the sink
/// short-circuits. Returns `false` if short-circuited.
pub(crate) fn run_plan(
    plan: &Plan,
    ev: &mut Evaluator,
    env: &Env,
    sink: &mut dyn FnMut(&mut Evaluator, &Env) -> ExecResult<bool>,
) -> ExecResult<bool> {
    match plan {
        Plan::Scan { var, source } => {
            let sv = ev.eval(env, source)?;
            for elem in collection_elements(&sv)? {
                if !sink(ev, &env.bind(*var, elem))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::IndexLookup { var, index, key } => {
            let kv = ev.eval(env, key)?;
            for member in index.lookup(&kv) {
                if !sink(ev, &env.bind(*var, member.clone()))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Plan::Unnest { input, var, path } => run_plan(input, ev, env, &mut |ev, row| {
            let sv = ev.eval(row, path)?;
            for elem in collection_elements(&sv)? {
                if !sink(ev, &row.bind(*var, elem))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }),
        Plan::Filter { input, pred } => run_plan(input, ev, env, &mut |ev, row| {
            if ev.eval(row, pred)?.as_bool()? {
                sink(ev, row)
            } else {
                Ok(true)
            }
        }),
        Plan::Bind { input, var, expr } => run_plan(input, ev, env, &mut |ev, row| {
            let v = ev.eval(row, expr)?;
            sink(ev, &row.bind(*var, v))
        }),
        Plan::Join { left, right, on, kind } => match kind {
            JoinKind::NestedLoop => {
                // Materialize the right side's binding deltas once, then
                // stream the left.
                let right_rows = materialize(right, ev, env)?;
                let on = on.clone();
                run_plan(left, ev, env, &mut |ev, lrow| {
                    'rows: for delta in &right_rows {
                        let mut row = lrow.clone();
                        for (var, val) in delta {
                            row = row.bind(*var, val.clone());
                        }
                        for (lk, rk) in &on {
                            let lv = ev.eval(lrow, lk)?;
                            let rv = ev.eval(&row, rk)?;
                            if lv != rv {
                                continue 'rows;
                            }
                        }
                        if !sink(ev, &row)? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                })
            }
            JoinKind::Hash => {
                // Build: key → binding deltas of the right side.
                let right_rows = materialize(right, ev, env)?;
                let mut table: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
                for (i, delta) in right_rows.iter().enumerate() {
                    let mut row = env.clone();
                    for (var, val) in delta {
                        row = row.bind(*var, val.clone());
                    }
                    let key = on
                        .iter()
                        .map(|(_, rk)| ev.eval(&row, rk))
                        .collect::<ExecResult<Vec<_>>>()?;
                    table.entry(key).or_default().push(i);
                }
                // Probe with the left.
                run_plan(left, ev, env, &mut |ev, lrow| {
                    let key = on
                        .iter()
                        .map(|(lk, _)| ev.eval(lrow, lk))
                        .collect::<ExecResult<Vec<_>>>()?;
                    if let Some(matches) = table.get(&key) {
                        for &i in matches {
                            let mut row = lrow.clone();
                            for (var, val) in &right_rows[i] {
                                row = row.bind(*var, val.clone());
                            }
                            if !sink(ev, &row)? {
                                return Ok(false);
                            }
                        }
                    }
                    Ok(true)
                })
            }
        },
    }
}

/// Materialize a sub-plan as a list of binding deltas (only the variables
/// the sub-plan itself binds).
fn materialize(
    plan: &Plan,
    ev: &mut Evaluator,
    env: &Env,
) -> ExecResult<Vec<Vec<(Symbol, Value)>>> {
    let vars = plan.bound_vars();
    let mut rows = Vec::new();
    run_plan(plan, ev, env, &mut |_, row| {
        let delta = vars
            .iter()
            .map(|v| {
                row.lookup(*v)
                    .cloned()
                    .map(|val| (*v, val))
                    .ok_or(EvalError::UnboundVariable(*v))
            })
            .collect::<ExecResult<Vec<_>>>()?;
        rows.push(delta);
        Ok(true)
    })?;
    Ok(rows)
}

fn collection_elements(v: &Value) -> ExecResult<Vec<Value>> {
    // An object in generator position binds once (§4.2 idiom), matching
    // the evaluator.
    if matches!(v, Value::Obj(_)) {
        return Ok(vec![v.clone()]);
    }
    v.elements()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{plan_comprehension, plan_with_options, PlanOptions};
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    fn db() -> Database {
        travel::generate(TravelScale::tiny(), 42)
    }

    fn portland() -> Expr {
        Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
                Expr::pred(Expr::var("r").proj("bed#").eq(Expr::int(3))),
            ],
        )
    }

    #[test]
    fn pipeline_agrees_with_evaluator() {
        let mut db = db();
        let q = portland();
        let direct = db.query(&q).unwrap();
        let plan = plan_comprehension(&q).unwrap();
        let piped = execute(&plan, &mut db).unwrap();
        assert_eq!(direct, piped);
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        // bag{ (e.name, h.name) | e ← Employees, h ← Hotels,
        //                         e.salary = h.name … } is nonsense; use a
        // self-join on bed#: pairs of hotels with same first-room price.
        let mut db = db();
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Hotels")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(
                    Expr::var("a")
                        .proj("name")
                        .eq(Expr::var("b").proj("name")),
                ),
            ],
        );
        let hash = plan_comprehension(&q).unwrap();
        assert!(hash.plan.uses_hash_join());
        let nl = plan_with_options(
            &q,
            PlanOptions { hash_joins: false, push_predicates: true },
        )
        .unwrap();
        assert!(!nl.plan.uses_hash_join());
        let (vh, sh) = execute_counted(&hash, &mut db).unwrap();
        let (vn, sn) = execute_counted(&nl, &mut db).unwrap();
        assert_eq!(vh, vn);
        // Self-join on a key: hash join does strictly less work.
        assert!(sh < sn, "hash {sh} vs nested-loop {sn}");
        // Every hotel matches exactly itself.
        assert_eq!(vh, Value::Int(db.extent_len("Hotels") as i64));
    }

    #[test]
    fn short_circuits_some() {
        let mut db = db();
        let q = Expr::comp(
            Monoid::Some,
            Expr::bool(true),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (v, steps) = execute_counted(&plan, &mut db).unwrap();
        assert_eq!(v, Value::Bool(true));
        // Must stop after the first hotel, not scan all of them.
        assert!(steps < 50, "did not short-circuit: {steps} steps");
    }

    #[test]
    fn cross_product_when_no_condition() {
        let mut db = db();
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Clients")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let v = execute(&plan, &mut db).unwrap();
        let scale = TravelScale::tiny();
        assert_eq!(v, Value::Int((scale.cities * scale.clients) as i64));
    }

    #[test]
    fn binds_execute() {
        let mut db = db();
        let q = Expr::Comp {
            monoid: Monoid::Sum,
            head: Box::new(Expr::var("two")),
            quals: vec![
                Expr::gen("c", Expr::var("Cities")),
                // An impure bind survives normalization and planning
                // rejects it; use a pure one here.
                Expr::bind("two", Expr::int(2)),
            ],
        };
        let plan = plan_comprehension(&q).unwrap();
        let v = execute(&plan, &mut db).unwrap();
        assert_eq!(v, Value::Int(2 * TravelScale::tiny().cities as i64));
    }
}
