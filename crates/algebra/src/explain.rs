//! `EXPLAIN`: render a plan tree for humans. Used by the experiment
//! harness to show how canonical comprehensions become pipelines.

use crate::logical::{JoinKind, Plan, Query};
use monoid_calculus::pretty::pretty;
use std::fmt::Write as _;

/// Render a query plan as an indented tree, reduce at the top.
pub fn explain(query: &Query) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Reduce[{}] head = {}",
        query.monoid,
        pretty(&query.head)
    );
    explain_plan(&query.plan, 1, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn explain_plan(plan: &Plan, depth: usize, out: &mut String) {
    indent(out, depth);
    match plan {
        Plan::Scan { var, source } => {
            let _ = writeln!(out, "Scan {var} ← {}", pretty(source));
        }
        Plan::IndexLookup { var, index, key } => {
            let _ = writeln!(
                out,
                "IndexLookup {var} ← {}[{} = {}]",
                index.extent,
                index.field,
                pretty(key)
            );
        }
        Plan::Unnest { input, var, path } => {
            let _ = writeln!(out, "Unnest {var} ← {}", pretty(path));
            explain_plan(input, depth + 1, out);
        }
        Plan::Filter { input, pred } => {
            let _ = writeln!(out, "Filter {}", pretty(pred));
            explain_plan(input, depth + 1, out);
        }
        Plan::Bind { input, var, expr } => {
            let _ = writeln!(out, "Bind {var} ≡ {}", pretty(expr));
            explain_plan(input, depth + 1, out);
        }
        Plan::Join { left, right, on, kind } => {
            let kind = match kind {
                JoinKind::NestedLoop => "NestedLoopJoin",
                JoinKind::Hash => "HashJoin",
            };
            let keys: Vec<String> = on
                .iter()
                .map(|(l, r)| format!("{} = {}", pretty(l), pretty(r)))
                .collect();
            let _ = writeln!(out, "{kind} on [{}]", keys.join(", "));
            explain_plan(left, depth + 1, out);
            explain_plan(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::plan_comprehension;
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;

    #[test]
    fn explain_renders_pipeline() {
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let s = explain(&plan);
        assert!(s.contains("Reduce[bag]"), "{s}");
        assert!(s.contains("Scan c ← Cities"), "{s}");
        assert!(s.contains("Unnest h ← c.hotels"), "{s}");
        assert!(s.contains("Filter"), "{s}");
    }
}
