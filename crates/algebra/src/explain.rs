//! `EXPLAIN`: render a plan tree for humans. Used by the experiment
//! harness to show how canonical comprehensions become pipelines, and by
//! [`crate::trace`] to render profiled plans with estimated and observed
//! cardinalities side by side.

use crate::logical::{JoinKind, Plan, Query};
use crate::optimizer::Stats;
use monoid_calculus::pretty::pretty;
use std::fmt::Write as _;

/// Render a query plan as an indented tree, reduce at the top.
pub fn explain(query: &Query) -> String {
    render_with(query, &mut |_, _| String::new())
}

/// Like [`explain`], with each operator annotated by its estimated output
/// cardinality from `stats` — the optimizer's view of the plan, readable
/// before anything runs.
pub fn explain_with_estimates(query: &Query, stats: &Stats) -> String {
    let est = stats.query_estimates(query);
    render_with(query, &mut |op, _| format!("  (est≈{})", fmt_rows(est[op])))
}

/// Shared tree renderer: `annotate` receives each operator's pre-order
/// index (the numbering [`crate::exec::Probe`] and
/// [`Stats::plan_estimates`] use) and returns a suffix for its line.
pub(crate) fn render_with(
    query: &Query,
    annotate: &mut dyn FnMut(usize, &Plan) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Reduce[{}] head = {}",
        query.monoid,
        pretty(&query.head)
    );
    explain_plan(&query.plan, 0, 1, annotate, &mut out);
    out
}

/// Format an estimated row count: whole numbers for anything ≥ 10, one
/// decimal below that (selectivities make fractional estimates common).
pub(crate) fn fmt_rows(est: f64) -> String {
    if est >= 10.0 {
        format!("{est:.0}")
    } else {
        format!("{est:.1}")
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// One operator's label, without its children.
pub(crate) fn op_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { var, source } => format!("Scan {var} ← {}", pretty(source)),
        Plan::IndexLookup { var, index, key } => format!(
            "IndexLookup {var} ← {}[{} = {}]",
            index.extent,
            index.field,
            pretty(key)
        ),
        Plan::Unnest { var, path, .. } => format!("Unnest {var} ← {}", pretty(path)),
        Plan::Filter { pred, .. } => format!("Filter {}", pretty(pred)),
        Plan::Bind { var, expr, .. } => format!("Bind {var} ≡ {}", pretty(expr)),
        Plan::Join { on, kind, .. } => {
            let kind = match kind {
                JoinKind::NestedLoop => "NestedLoopJoin",
                JoinKind::Hash => "HashJoin",
            };
            let keys: Vec<String> = on
                .iter()
                .map(|(l, r)| format!("{} = {}", pretty(l), pretty(r)))
                .collect();
            format!("{kind} on [{}]", keys.join(", "))
        }
        Plan::HashProbe { table, on_left, .. } => {
            let keys: Vec<String> = on_left.iter().map(pretty).collect();
            format!(
                "HashProbe on [{}] (prebuilt {} rows)",
                keys.join(", "),
                table.rows.len()
            )
        }
    }
}

fn explain_plan(
    plan: &Plan,
    op: usize,
    depth: usize,
    annotate: &mut dyn FnMut(usize, &Plan) -> String,
    out: &mut String,
) {
    indent(out, depth);
    let _ = writeln!(out, "{}{}", op_label(plan), annotate(op, plan));
    match plan {
        Plan::Scan { .. } | Plan::IndexLookup { .. } => {}
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            explain_plan(input, op + 1, depth + 1, annotate, out);
        }
        Plan::Join { left, right, .. } => {
            explain_plan(left, op + 1, depth + 1, annotate, out);
            explain_plan(right, op + 1 + left.node_count(), depth + 1, annotate, out);
        }
        Plan::HashProbe { left, .. } => {
            explain_plan(left, op + 1, depth + 1, annotate, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexCatalog;
    use crate::logical::plan_comprehension;
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn explain_renders_pipeline() {
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
                Expr::bind("city", Expr::var("c").proj("name")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let s = explain(&plan);
        assert!(s.contains("Reduce[bag]"), "{s}");
        assert!(s.contains("Scan c ← Cities"), "{s}");
        assert!(s.contains("Unnest h ← c.hotels"), "{s}");
        assert!(s.contains("Filter"), "{s}");
        assert!(s.contains("Bind city ≡ c.name"), "{s}");

        // The same pipeline, bind-free so the filtered scan is eligible
        // for index conversion, renders the IndexLookup operator.
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let db = travel::generate(TravelScale::tiny(), 42);
        let mut catalog = IndexCatalog::new();
        catalog.build(&db, "Cities", "name").unwrap();
        let (indexed, hits) = crate::index::apply_indexes(&plan, &catalog, &db);
        assert_eq!(hits, 1);
        let s = explain(&indexed);
        assert!(
            s.contains("IndexLookup c ← Cities[name = \"Portland\"]"),
            "{s}"
        );
        assert!(!s.contains("Scan c"), "{s}");
    }

    #[test]
    fn estimates_annotate_every_operator() {
        let db = travel::generate(TravelScale::tiny(), 42);
        let stats = Stats::gather(&db);
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let s = explain_with_estimates(&plan, &stats);
        // Every operator line (all lines but the Reduce header) carries an
        // estimate annotation.
        for line in s.lines().skip(1) {
            assert!(line.contains("(est≈"), "unannotated line: {line}");
        }
        assert!(s.contains(&format!("Scan c ← Cities  (est≈{})", fmt_rows(TravelScale::tiny().cities as f64))), "{s}");
    }
}
