//! Secondary indexes — the physical-design dimension the companion paper
//! \[17\] ("An Algebraic Framework for Physical OODB Design") adds on top of
//! the calculus. The SIGMOD paper's efficiency story is: normalize to
//! canonical form, map to the algebra, then choose physical access paths.
//! This module supplies the access paths: hash-style indexes on extent
//! fields, and an optimizer pass that rewrites `Scan → Filter(var.f = k)`
//! pipelines into index lookups.
//!
//! Indexes are immutable snapshots of the database at build time, stamped
//! with the database's [mutation epoch](Database::mutation_epoch). The
//! rewrite pass refuses a stale index — a lookup built before the last
//! update would silently answer from old data — and either skips it
//! ([`apply_indexes`]) or rebuilds it in place
//! ([`apply_indexes_rebuilding`]; one extent scan).

use crate::error::ExecResult;
use crate::logical::{Plan, Query};
use monoid_calculus::error::EvalError;
use monoid_calculus::expr::{BinOp, Expr};
use monoid_calculus::subst::free_vars;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::Value;
use monoid_store::Database;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// An index over one field of one extent: field value → member objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Index {
    pub extent: Symbol,
    pub field: Symbol,
    entries: BTreeMap<Value, Vec<Value>>,
    len: usize,
    /// The database's mutation epoch when this snapshot was built.
    epoch: u64,
}

impl Index {
    /// The [mutation epoch](Database::mutation_epoch) this index was built
    /// at; it answers correctly only while the database still reports the
    /// same epoch.
    pub fn built_at_epoch(&self) -> u64 {
        self.epoch
    }

    /// Is this snapshot still consistent with `db`?
    pub fn is_fresh(&self, db: &Database) -> bool {
        self.epoch == db.mutation_epoch()
    }
    /// All members whose field equals `key`.
    pub fn lookup(&self, key: &Value) -> &[Value] {
        self.entries.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }
}

/// A set of indexes, keyed by `(extent, field)`.
#[derive(Debug, Default, Clone)]
pub struct IndexCatalog {
    indexes: HashMap<(Symbol, Symbol), Arc<Index>>,
}

impl IndexCatalog {
    pub fn new() -> IndexCatalog {
        IndexCatalog::default()
    }

    /// Build (or rebuild) an index on `extent`.`field`.
    pub fn build(
        &mut self,
        db: &Database,
        extent: impl Into<Symbol>,
        field: impl Into<Symbol>,
    ) -> ExecResult<()> {
        let extent = extent.into();
        let field = field.into();
        let root = db
            .root(extent)
            .ok_or_else(|| EvalError::Other(format!("no extent `{extent}` to index")))?;
        let mut entries: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        let mut len = 0usize;
        for member in root.elements()? {
            let key = match &member {
                Value::Obj(oid) => db
                    .state(*oid)?
                    .field(field)
                    .cloned()
                    .ok_or_else(|| {
                        EvalError::Other(format!("member of `{extent}` has no field `{field}`"))
                    })?,
                other => other.field(field).cloned().ok_or_else(|| {
                    EvalError::Other(format!("member of `{extent}` has no field `{field}`"))
                })?,
            };
            entries.entry(key).or_default().push(member);
            len += 1;
        }
        self.indexes.insert(
            (extent, field),
            Arc::new(Index { extent, field, entries, len, epoch: db.mutation_epoch() }),
        );
        Ok(())
    }

    /// Rebuild every index whose snapshot epoch no longer matches `db`.
    /// Returns how many were rebuilt.
    pub fn rebuild_stale(&mut self, db: &Database) -> ExecResult<usize> {
        let stale: Vec<(Symbol, Symbol)> = self
            .indexes
            .values()
            .filter(|ix| !ix.is_fresh(db))
            .map(|ix| (ix.extent, ix.field))
            .collect();
        for (extent, field) in &stale {
            self.build(db, *extent, *field)?;
        }
        Ok(stale.len())
    }

    pub fn get(&self, extent: Symbol, field: Symbol) -> Option<&Arc<Index>> {
        self.indexes.get(&(extent, field))
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

/// Rewrite `Filter(var.field = key) ∘ Scan(var ← Extent)` into an index
/// lookup wherever the catalog has a matching **fresh** index and the key
/// expression is independent of the scan variable. Indexes whose snapshot
/// epoch trails `db.mutation_epoch()` are refused — the filter pipeline
/// stays as-is rather than answering from stale data. Returns the
/// rewritten query and how many lookups were introduced.
pub fn apply_indexes(query: &Query, catalog: &IndexCatalog, db: &Database) -> (Query, usize) {
    let mut count = 0;
    let epoch = db.mutation_epoch();
    let plan = rewrite(&query.plan, catalog, epoch, &mut count);
    // Recompute the static effect classification: the rewrite replaces
    // filter+scan pipelines with index lookups, which can only shrink the
    // set of embedded expressions.
    let plan_effects = plan.effects();
    (
        Query { plan, monoid: query.monoid.clone(), head: query.head.clone(), plan_effects },
        count,
    )
}

/// [`apply_indexes`], but stale indexes are rebuilt (one extent scan each)
/// before the rewrite instead of being skipped.
pub fn apply_indexes_rebuilding(
    query: &Query,
    catalog: &mut IndexCatalog,
    db: &Database,
) -> ExecResult<(Query, usize)> {
    catalog.rebuild_stale(db)?;
    Ok(apply_indexes(query, catalog, db))
}

fn rewrite(plan: &Plan, catalog: &IndexCatalog, epoch: u64, count: &mut usize) -> Plan {
    match plan {
        Plan::Filter { input, pred } => {
            // Try the pattern on this filter + an immediate scan below.
            if let Plan::Scan { var, source: Expr::Var(extent) } = input.as_ref() {
                if let Some((field, key)) = match_field_equality(pred, *var) {
                    if let Some(index) = catalog.get(*extent, field) {
                        // A snapshot from an earlier epoch would answer
                        // with pre-update data; keep the scan instead.
                        if index.built_at_epoch() == epoch {
                            *count += 1;
                            return Plan::IndexLookup {
                                var: *var,
                                index: index.clone(),
                                key: Box::new(key),
                            };
                        }
                    }
                }
            }
            Plan::Filter {
                input: Box::new(rewrite(input, catalog, epoch, count)),
                pred: pred.clone(),
            }
        }
        Plan::Unnest { input, var, path } => Plan::Unnest {
            input: Box::new(rewrite(input, catalog, epoch, count)),
            var: *var,
            path: path.clone(),
        },
        Plan::Bind { input, var, expr } => Plan::Bind {
            input: Box::new(rewrite(input, catalog, epoch, count)),
            var: *var,
            expr: expr.clone(),
        },
        Plan::Join { left, right, on, kind } => Plan::Join {
            left: Box::new(rewrite(left, catalog, epoch, count)),
            right: Box::new(rewrite(right, catalog, epoch, count)),
            on: on.clone(),
            kind: *kind,
        },
        Plan::HashProbe { left, table, on_left } => Plan::HashProbe {
            left: Box::new(rewrite(left, catalog, epoch, count)),
            table: table.clone(),
            on_left: on_left.clone(),
        },
        Plan::Scan { .. } | Plan::IndexLookup { .. } => plan.clone(),
    }
}

/// Match `var.field = key` (either orientation) where `key` does not
/// mention `var`.
fn match_field_equality(pred: &Expr, var: Symbol) -> Option<(Symbol, Expr)> {
    let Expr::BinOp(BinOp::Eq, a, b) = pred else { return None };
    let try_side = |proj: &Expr, key: &Expr| -> Option<(Symbol, Expr)> {
        let Expr::Proj(base, field) = proj else { return None };
        let Expr::Var(v) = base.as_ref() else { return None };
        if *v == var && !free_vars(key).contains(&var) {
            Some((*field, key.clone()))
        } else {
            None
        }
    };
    try_side(a, b).or_else(|| try_side(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::logical::plan_comprehension;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    fn portland_query() -> Expr {
        Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        )
    }

    #[test]
    fn index_build_and_lookup() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Cities", "name").unwrap();
        let idx = cat.get(Symbol::new("Cities"), Symbol::new("name")).unwrap();
        assert_eq!(idx.len(), TravelScale::tiny().cities);
        assert_eq!(idx.lookup(&Value::str("Portland")).len(), 1);
        assert_eq!(idx.lookup(&Value::str("Nowhere")).len(), 0);
    }

    #[test]
    fn optimizer_introduces_index_lookup() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Cities", "name").unwrap();
        let q = plan_comprehension(&portland_query()).unwrap();
        let (indexed, hits) = apply_indexes(&q, &cat, &db);
        assert_eq!(hits, 1);
        assert!(format!("{:?}", indexed.plan).contains("IndexLookup"));
        // Results agree with the unindexed plan.
        let plain = execute(&q, &mut db).unwrap();
        let fast = execute(&indexed, &mut db).unwrap();
        assert_eq!(plain, fast);
    }

    #[test]
    fn index_scan_does_less_work() {
        let mut db = travel::generate(TravelScale::with_hotels(400), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Cities", "name").unwrap();
        let q = plan_comprehension(&portland_query()).unwrap();
        let (indexed, _) = apply_indexes(&q, &cat, &db);
        let (v1, plain_steps) = crate::exec::execute_counted(&q, &mut db).unwrap();
        let (v2, index_steps) = crate::exec::execute_counted(&indexed, &mut db).unwrap();
        assert_eq!(v1, v2);
        assert!(
            index_steps * 4 < plain_steps,
            "index {index_steps} vs scan {plain_steps}"
        );
    }

    #[test]
    fn no_index_no_rewrite() {
        let db = travel::generate(TravelScale::tiny(), 5);
        let q = plan_comprehension(&portland_query()).unwrap();
        let (same, hits) = apply_indexes(&q, &IndexCatalog::new(), &db);
        assert_eq!(hits, 0);
        assert_eq!(same.plan, q.plan);
    }

    #[test]
    fn stale_indexes_are_refused() {
        // Regression: the rewrite pass used to install index lookups built
        // before the latest update, answering queries from stale data.
        // Now snapshots carry the mutation epoch and a trailing index is
        // skipped (the plan keeps its scan, which reads live data).
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Cities", "name").unwrap();
        let q = plan_comprehension(&portland_query()).unwrap();
        let (_, hits) = apply_indexes(&q, &cat, &db);
        assert_eq!(hits, 1, "fresh index is used");

        // Any mutation — here a field update — advances the epoch.
        let touch = Expr::comp(
            Monoid::All,
            Expr::var("e").assign(Expr::record(vec![
                ("name", Expr::var("e").proj("name")),
                ("salary", Expr::int(1)),
            ])),
            vec![Expr::gen("e", Expr::var("Employees"))],
        );
        db.query(&touch).unwrap();
        let idx = cat.get(Symbol::new("Cities"), Symbol::new("name")).unwrap();
        assert!(!idx.is_fresh(&db), "snapshot trails the database");
        let (plan, hits) = apply_indexes(&q, &cat, &db);
        assert_eq!(hits, 0, "stale index is refused");
        assert!(!format!("{:?}", plan.plan).contains("IndexLookup"));

        // The rebuilding variant refreshes the snapshot and uses it.
        let (plan, hits) = apply_indexes_rebuilding(&q, &mut cat, &db).unwrap();
        assert_eq!(hits, 1);
        assert!(format!("{:?}", plan.plan).contains("IndexLookup"));
        assert!(cat
            .get(Symbol::new("Cities"), Symbol::new("name"))
            .unwrap()
            .is_fresh(&db));
    }

    #[test]
    fn rebuild_stale_touches_only_trailing_indexes() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Cities", "name").unwrap();
        db.set_root("Spare", Value::list(vec![]));
        cat.build(&db, "Employees", "salary").unwrap();
        // Cities/name predates the set_root, Employees/salary does not.
        assert_eq!(cat.rebuild_stale(&db).unwrap(), 1);
        assert_eq!(cat.rebuild_stale(&db).unwrap(), 0, "now all fresh");
    }
}
