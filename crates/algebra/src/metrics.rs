//! Executor metering: a [`Probe`] that routes per-operator row counts,
//! join build sizes, and short-circuit events into the process-wide
//! metrics registry ([`monoid_calculus::metrics::global`]).
//!
//! Where [`crate::trace::ExecProbe`] profiles *one* query (per-operator
//! cells read back into a `QueryProfile`), [`MetricsProbe`] accounts for
//! a *fleet*: its counters are cumulative across every metered
//! execution, labeled by operator kind (`scan`, `filter`, `hash-join`,
//! …) so the registry stays bounded no matter how many distinct plans
//! run.
//!
//! The zero-cost contract of the unprofiled path is preserved exactly as
//! with [`NoProbe`]: `MetricsProbe` is just another monomorphization of
//! the same generic executor — `ENABLED = false` keeps the timing
//! instrumentation compiled out, hooks inline to a relaxed atomic add,
//! and the plain [`crate::execute`] path still instantiates `NoProbe`,
//! whose empty hooks compile to nothing and which never touches the
//! registry (asserted by `tests/metrics.rs`).

use crate::error::ExecResult;
use crate::exec::{self, Probe};
use crate::logical::{Plan, Query};
use crate::parallel::{self, Fallback, ParallelReport};
use monoid_calculus::analysis::effects_of;
use monoid_calculus::metrics::{global, Counter, Histogram};
use monoid_calculus::pretty::pretty;
use monoid_calculus::recorder::{self, RecordScope, SlowQueryCapture};
use monoid_calculus::trace::Phase;
use monoid_calculus::value::Value;
use monoid_store::Database;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Operator kinds, the label space of the executor's registry series.
const KINDS: [&str; 7] =
    ["scan", "index-lookup", "unnest", "filter", "bind", "join", "hash-probe"];

fn kind_index(plan: &Plan) -> usize {
    KINDS
        .iter()
        .position(|k| *k == plan.kind_label())
        .expect("every Plan::kind_label is in KINDS")
}

/// Per-kind counter handles, resolved once per process.
struct ExecMetrics {
    rows: [Arc<Counter>; 7],
    build_rows: [Arc<Counter>; 7],
    short_circuits: Arc<Counter>,
    executions: Arc<Counter>,
    errors: Arc<Counter>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ExecMetrics {
            rows: KINDS.map(|k| r.counter_with("exec_rows_pushed_total", &[("operator", k)])),
            build_rows: KINDS.map(|k| r.counter_with("exec_build_rows_total", &[("operator", k)])),
            short_circuits: r.counter("exec_short_circuits_total"),
            executions: r.counter("exec_queries_total"),
            errors: r.counter("exec_query_errors_total"),
        }
    })
}

/// A probe that charges every row an operator pushes to the cumulative
/// per-operator-kind counters in the global registry. Construct one per
/// query with [`MetricsProbe::for_query`] (it needs the plan to map
/// pre-order operator indexes to kinds), or run straight through
/// [`execute_metered`].
pub struct MetricsProbe {
    /// Pre-order operator index → position in [`KINDS`].
    op_kind: Vec<usize>,
}

impl MetricsProbe {
    pub fn for_query(query: &Query) -> MetricsProbe {
        MetricsProbe::for_plan(&query.plan)
    }

    /// Build from a bare plan — the parallel driver rewrites worker plans
    /// (singleton scans, prebuilt probes) whose operator numbering differs
    /// from the original query's.
    pub fn for_plan(plan: &Plan) -> MetricsProbe {
        let mut op_kind = Vec::with_capacity(plan.node_count());
        collect_kinds(plan, &mut op_kind);
        MetricsProbe { op_kind }
    }
}

/// Pre-order kind collection, mirroring the executor's operator
/// numbering (self, then children left-to-right).
fn collect_kinds(plan: &Plan, out: &mut Vec<usize>) {
    out.push(kind_index(plan));
    match plan {
        Plan::Scan { .. } | Plan::IndexLookup { .. } => {}
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            collect_kinds(input, out);
        }
        Plan::Join { left, right, .. } => {
            collect_kinds(left, out);
            collect_kinds(right, out);
        }
        Plan::HashProbe { left, .. } => collect_kinds(left, out),
    }
}

impl Probe for MetricsProbe {
    /// Timing stays compiled out — metering counts flows, it does not
    /// time operators (that is `ExecProbe`'s job).
    const ENABLED: bool = false;

    #[inline]
    fn row_out(&self, op: usize) {
        exec_metrics().rows[self.op_kind[op]].inc();
    }

    #[inline]
    fn build_rows(&self, op: usize, n: u64) {
        exec_metrics().build_rows[self.op_kind[op]].add(n);
    }

    #[inline]
    fn short_circuit(&self) {
        exec_metrics().short_circuits.inc();
    }
}

/// Parallel-engine counter handles, resolved once per process. The
/// `reason` label space of `parallel_fallback_total` is the closed
/// [`Fallback`] enum, so the registry stays bounded.
struct ParallelMetrics {
    executions: Arc<Counter>,
    workers: Arc<Counter>,
    fallbacks: [Arc<Counter>; 3],
    worker_rows: Arc<Histogram>,
    prebuilt_rows: Arc<Counter>,
    reconciled_objects: Arc<Counter>,
}

fn parallel_metrics() -> &'static ParallelMetrics {
    static METRICS: OnceLock<ParallelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ParallelMetrics {
            executions: r.counter("parallel_executions_total"),
            workers: r.counter("parallel_workers_total"),
            fallbacks: [Fallback::SingleThread, Fallback::Mutation, Fallback::TooFewRows]
                .map(|f| r.counter_with("parallel_fallback_total", &[("reason", f.as_str())])),
            worker_rows: r.histogram("parallel_worker_rows"),
            prebuilt_rows: r.counter("parallel_prebuilt_rows_total"),
            reconciled_objects: r.counter("parallel_reconciled_objects_total"),
        }
    })
}

fn record_parallel(report: &ParallelReport) {
    let m = parallel_metrics();
    m.executions.inc();
    m.workers.add(report.workers as u64);
    if let Some(reason) = report.fallback {
        let i = match reason {
            Fallback::SingleThread => 0,
            Fallback::Mutation => 1,
            Fallback::TooFewRows => 2,
        };
        m.fallbacks[i].inc();
    }
    for &rows in &report.worker_rows {
        m.worker_rows.observe(rows);
    }
    m.prebuilt_rows.add(report.prebuilt_rows);
    m.reconciled_objects.add(report.reconciled_objects);
}

/// [`crate::execute_parallel`] with fleet metering: per-operator row and
/// build counters flow through a shared [`MetricsProbe`] (built from the
/// rewritten worker plan), and the engine's [`ParallelReport`] lands in
/// the `parallel_*` family — executions, workers spawned, per-worker row
/// distribution, prebuilt build rows, reconciled heap objects, and
/// `parallel_fallback_total{reason=…}` when the query ran sequentially.
pub fn execute_parallel_metered(
    query: &Query,
    db: &mut Database,
    threads: usize,
) -> ExecResult<Value> {
    execute_parallel_metered_bound(query, db, threads, &[])
}

/// [`execute_parallel_metered`] with late-bound parameter values.
pub fn execute_parallel_metered_bound(
    query: &Query,
    db: &mut Database,
    threads: usize,
    params: &[(monoid_calculus::symbol::Symbol, Value)],
) -> ExecResult<Value> {
    let scope = record_scope(query);
    let started = scope.is_some().then(Instant::now);
    let result =
        parallel::execute_parallel_with_bound(query, db, threads, params, MetricsProbe::for_plan);
    let result = match result {
        Ok((v, report)) => {
            record_parallel(&report);
            Ok(v)
        }
        Err(e) => {
            exec_metrics().errors.inc();
            Err(e)
        }
    };
    finish_scope(scope, started, query, &result);
    result
}

/// Open a flight-recorder scope for a plan-level metered execution. The
/// algebra layer has no OQL source text, so the record is labeled by the
/// reduction itself (`Reduce[bag] head = …`). Returns `None` — without
/// building the label — when the recorder is off or a higher layer
/// (serving, `explain_analyze`) already owns this thread's record.
fn record_scope(query: &Query) -> Option<RecordScope> {
    if !recorder::global().enabled() || recorder::active() {
        return None;
    }
    recorder::begin(&format!("Reduce[{}] head = {}", query.monoid, pretty(&query.head)))
}

/// Commit a scope opened by [`record_scope`]: stamp the execute phase,
/// the effect summary, and the outcome, and attach the optimized plan
/// text if the record crossed the slow-query threshold. (Plan text only
/// — re-running under the profiler is the serving layer's job, where
/// effect-safety is known.)
fn finish_scope(
    scope: Option<RecordScope>,
    started: Option<Instant>,
    query: &Query,
    result: &ExecResult<Value>,
) {
    let Some(scope) = scope else { return };
    if let Some(started) = started {
        recorder::note_phase(Phase::Execute, started.elapsed().as_nanos());
    }
    recorder::note_effects(|| effects_of(&query.head).join(query.plan_effects).to_string());
    let error = result.as_ref().err().map(ToString::to_string);
    if let Some(trigger) = scope.finish(error) {
        recorder::global().capture_slow(SlowQueryCapture {
            seq: trigger.seq,
            fingerprint: trigger.fingerprint,
            source: trigger.source,
            total_nanos: trigger.total_nanos,
            threshold_nanos: trigger.threshold_nanos,
            plan: Some(crate::explain::explain(query)),
            profile: None,
        });
    }
}

/// [`crate::execute`] with fleet metering: rows pushed, build sizes, and
/// short-circuits land in the global registry, labeled by operator kind,
/// alongside execution and error counters.
pub fn execute_metered(query: &Query, db: &mut Database) -> ExecResult<Value> {
    execute_metered_bound(query, db, &[])
}

/// [`execute_metered`] with late-bound parameter values.
pub fn execute_metered_bound(
    query: &Query,
    db: &mut Database,
    params: &[(monoid_calculus::symbol::Symbol, Value)],
) -> ExecResult<Value> {
    let m = exec_metrics();
    m.executions.inc();
    let probe = MetricsProbe::for_query(query);
    let scope = record_scope(query);
    let started = scope.is_some().then(Instant::now);
    let result = exec::execute_probed_bound(query, db, params, &probe).map(|(v, _)| v);
    if result.is_err() {
        m.errors.inc();
    }
    finish_scope(scope, started, query, &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::plan_comprehension;
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn pre_order_kinds_match_plan_shape() {
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let probe = MetricsProbe::for_query(&plan);
        // Pre-order: Unnest, Filter, Scan.
        assert_eq!(
            probe.op_kind.iter().map(|&i| KINDS[i]).collect::<Vec<_>>(),
            vec!["unnest", "filter", "scan"]
        );
    }

    #[test]
    fn metered_execution_agrees_with_plain() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("c", Expr::var("Cities"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let plain = exec::execute(&plan, &mut db).unwrap();
        let before = global().snapshot();
        let metered = execute_metered(&plan, &mut db).unwrap();
        assert_eq!(plain, metered);
        let d = global().snapshot().diff(&before);
        assert!(d.counter("exec_queries_total") >= 1);
        assert!(
            d.counter_with("exec_rows_pushed_total", &[("operator", "scan")])
                >= TravelScale::tiny().cities as u64
        );
    }

    #[test]
    fn parallel_metering_records_workers_and_fallbacks() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let q = Expr::comp(
            Monoid::List,
            Expr::var("h").proj("name"),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = exec::execute(&plan, &mut db).unwrap();

        let before = global().snapshot();
        let par = execute_parallel_metered(&plan, &mut db, 4).unwrap();
        assert_eq!(seq, par);
        let d = global().snapshot().diff(&before);
        assert!(d.counter("parallel_executions_total") >= 1);
        assert!(d.counter("parallel_workers_total") >= 2);
        assert_eq!(
            d.counter_with("parallel_fallback_total", &[("reason", "single-thread")]),
            0
        );

        // threads = 1 falls back and says why — and the series shows up
        // in the Prometheus exposition.
        let before = global().snapshot();
        execute_parallel_metered(&plan, &mut db, 1).unwrap();
        let d = global().snapshot().diff(&before);
        assert_eq!(
            d.counter_with("parallel_fallback_total", &[("reason", "single-thread")]),
            1
        );
        let text = global().snapshot().to_prometheus();
        assert!(
            text.contains("parallel_fallback_total{reason=\"single-thread\"}"),
            "{text}"
        );
    }
}
