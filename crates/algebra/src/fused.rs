//! Fused batch execution: a canonical comprehension as one monomorphic fold.
//!
//! The paper's central performance claim (§1, §6) is that normalization
//! produces canonical forms whose operator chains — scan → filter → bind →
//! unnest → reduce — *are* a single monoid homomorphism. The plan walk in
//! [`crate::exec`] honors that shape but pays per-row machinery for it: a
//! `dyn FnMut` sink call per operator per row, an `Arc`-allocated
//! environment node per binding, and a full evaluator dispatch (with step
//! ticking) per expression node. None of that is needed for a linear
//! chain: this module compiles the chain once into a flat stage list over
//! a slot-addressed row buffer, then drives the whole pipeline as one
//! tight loop that borrows rows from the extent's `Arc<Vec<Value>>` and
//! accumulates directly into the target monoid.
//!
//! What fuses: a linear `Scan`/`IndexLookup` spine extended only by
//! `Filter`/`Bind`/`Unnest` stages, whose embedded expressions are built
//! from literals, variables, parameters, records, tuples, projections,
//! arithmetic/comparison/logic, `if`, and `!` (deref) — and whose head and
//! plan are statically pure and non-allocating (PR 4's `Effects`). What
//! falls back to the plan walk: joins (`Join`/`HashProbe`), allocating or
//! mutating expressions, vector monoids, and any expression form outside
//! the compiled subset (lambdas, nested comprehensions, `let`, …).
//!
//! Equivalence is the load-bearing invariant: fused ≡ plan-walk
//! byte-identical, OID-for-OID. Two design rules enforce it. First, the
//! value-level semantics are *shared*, not duplicated — projections,
//! binary and unary operators delegate to the same
//! [`monoid_calculus::eval`] free functions the evaluator itself calls, so
//! results and error messages cannot drift. Second, the compiler declines
//! rather than approximates: any construct it cannot reproduce exactly
//! (including an unresolvable global, which the plan walk would report
//! with its own error) routes the query through the old path untouched.
//! Iteration order is the collection's canonical element order on both
//! engines, so ordered monoids (`list`, `str`, sorted variants) agree
//! without any re-sorting, and `some`/`all` short-circuit at the same
//! element.

use crate::error::ExecResult;
use crate::logical::{Plan, Query};
use monoid_calculus::analysis::{effects_of, Effects};
use monoid_calculus::eval::{binop_values, project_value, unop_value, Evaluator};
use monoid_calculus::expr::{BinOp, Expr, Literal, UnOp};
use monoid_calculus::heap::Heap;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::{Accumulator, Env, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// Which execution engine ran (or would run) a query. Surfaced by
/// `explain_analyze`, the flight recorder, and `Prepared::execute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The fused single-fold loop in this module.
    Fused,
    /// The push-based plan-tree interpreter in [`crate::exec`].
    PlanWalk,
}

impl Engine {
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Fused => "fused",
            Engine::PlanWalk => "plan-walk",
        }
    }
}

/// Static classification: would [`crate::exec::execute`] route this query
/// through the fused engine? (The one dynamic exception: a query whose
/// globals don't resolve at execution time still falls back, so the plan
/// walk can report the unbound name exactly as it always has.)
pub fn fused_eligible(query: &Query) -> bool {
    compile(query).is_some()
}

/// The engine [`fused_eligible`] predicts for this query.
pub fn engine_of(query: &Query) -> Engine {
    if fused_eligible(query) {
        Engine::Fused
    } else {
        Engine::PlanWalk
    }
}

/// An expression compiled against the slot-addressed row buffer: variable
/// lookups become array indexing, and everything else mirrors the
/// evaluator's value-level semantics via the shared free functions.
#[derive(Debug, Clone)]
enum FusedExpr {
    Const(Value),
    Slot(usize),
    Record(Vec<(Symbol, FusedExpr)>),
    Tuple(Vec<FusedExpr>),
    Proj(Box<FusedExpr>, Symbol),
    TupleProj(Box<FusedExpr>, usize),
    Bin(BinOp, Box<FusedExpr>, Box<FusedExpr>),
    Un(UnOp, Box<FusedExpr>),
    If(Box<FusedExpr>, Box<FusedExpr>, Box<FusedExpr>),
    Deref(Box<FusedExpr>),
}

/// A borrowed slot override, chained through the fold's recursion: the
/// scan and unnest loops bind their current element *by reference* here
/// instead of cloning it into the row buffer (a record-valued element
/// costs two refcount round-trips per row). Lookup walks the chain
/// innermost-first and falls through to the owned buffer, so `Bind` —
/// whose value is freshly computed and already owned — keeps writing to
/// its (distinct, never overridden) slot.
struct Frame<'a> {
    slot: usize,
    value: &'a Value,
    parent: Option<&'a Frame<'a>>,
}

fn slot_value<'a>(slots: &'a [Value], frame: Option<&'a Frame<'a>>, slot: usize) -> &'a Value {
    let mut cur = frame;
    while let Some(f) = cur {
        if f.slot == slot {
            return f.value;
        }
        cur = f.parent;
    }
    &slots[slot]
}

impl FusedExpr {
    /// Evaluate as an *operand*: slot and constant references borrow
    /// instead of cloning. Projections, comparisons, and dereferences
    /// only need to look at their operands, and cloning a record-valued
    /// slot costs two refcount round-trips per row — the dominant cost
    /// of the fold once dispatch is gone.
    fn eval_ref<'a>(
        &'a self,
        slots: &'a [Value],
        frame: Option<&'a Frame<'a>>,
        heap: &Heap,
    ) -> ExecResult<std::borrow::Cow<'a, Value>> {
        use std::borrow::Cow;
        match self {
            FusedExpr::Const(v) => Ok(Cow::Borrowed(v)),
            FusedExpr::Slot(i) => Ok(Cow::Borrowed(slot_value(slots, frame, *i))),
            other => other.eval(slots, frame, heap).map(Cow::Owned),
        }
    }

    fn eval(&self, slots: &[Value], frame: Option<&Frame<'_>>, heap: &Heap) -> ExecResult<Value> {
        match self {
            FusedExpr::Const(v) => Ok(v.clone()),
            FusedExpr::Slot(i) => Ok(slot_value(slots, frame, *i).clone()),
            FusedExpr::Record(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for (name, fe) in fields {
                    vals.push((*name, fe.eval(slots, frame, heap)?));
                }
                Ok(Value::record(vals))
            }
            FusedExpr::Tuple(items) => {
                let vals = items
                    .iter()
                    .map(|i| i.eval(slots, frame, heap))
                    .collect::<ExecResult<Vec<_>>>()?;
                Ok(Value::tuple(vals))
            }
            FusedExpr::Proj(inner, field) => {
                let v = inner.eval_ref(slots, frame, heap)?;
                project_value(heap, v.as_ref(), *field)
            }
            FusedExpr::TupleProj(inner, idx) => {
                let v = inner.eval_ref(slots, frame, heap)?;
                match v.as_ref() {
                    Value::Tuple(items) => items.get(*idx).cloned().ok_or_else(|| {
                        monoid_calculus::error::EvalError::TypeMismatch {
                            op: "tuple projection",
                            detail: format!("index {idx} on {}-tuple", items.len()),
                        }
                    }),
                    other => Err(monoid_calculus::error::EvalError::TypeMismatch {
                        op: "tuple projection",
                        detail: format!("expected tuple, got {}", other.kind()),
                    }),
                }
            }
            FusedExpr::Bin(op, lhs, rhs) => match op {
                // and/or short-circuit, exactly like the evaluator.
                BinOp::And => Ok(Value::Bool(
                    lhs.eval_ref(slots, frame, heap)?.as_bool()?
                        && rhs.eval_ref(slots, frame, heap)?.as_bool()?,
                )),
                BinOp::Or => Ok(Value::Bool(
                    lhs.eval_ref(slots, frame, heap)?.as_bool()?
                        || rhs.eval_ref(slots, frame, heap)?.as_bool()?,
                )),
                _ => {
                    let a = lhs.eval_ref(slots, frame, heap)?;
                    let b = rhs.eval_ref(slots, frame, heap)?;
                    binop_values(*op, a.as_ref(), b.as_ref())
                }
            },
            FusedExpr::Un(op, inner) => unop_value(*op, inner.eval(slots, frame, heap)?),
            FusedExpr::If(cond, then, els) => {
                if cond.eval_ref(slots, frame, heap)?.as_bool()? {
                    then.eval(slots, frame, heap)
                } else {
                    els.eval(slots, frame, heap)
                }
            }
            FusedExpr::Deref(inner) => match inner.eval_ref(slots, frame, heap)?.as_ref() {
                Value::Obj(oid) => Ok(heap.get(*oid)?.clone()),
                other => Err(monoid_calculus::error::EvalError::TypeMismatch {
                    op: "deref",
                    detail: format!("expected object, got {}", other.kind()),
                }),
            },
        }
    }
}

/// One non-root operator of the fused chain, in execution (bottom-up)
/// order.
#[derive(Debug)]
enum Stage {
    Filter(FusedExpr),
    Bind { slot: usize, expr: FusedExpr },
    Unnest { slot: usize, path: FusedExpr },
}

/// The chain's row producer.
#[derive(Debug)]
enum Root<'q> {
    Scan { slot: usize, source: &'q Expr },
    Index { slot: usize, index: &'q crate::index::Index, key: &'q Expr },
}

/// A fully compiled fused pipeline, borrowing the plan's expressions.
#[derive(Debug)]
pub(crate) struct FusedQuery<'q> {
    root: Root<'q>,
    stages: Vec<Stage>,
    head: FusedExpr,
    monoid: &'q Monoid,
    n_slots: usize,
    /// `(slot, name)` pairs to fill from the root environment at setup —
    /// extents, parameters, and any other free variable of the chain.
    globals: Vec<(usize, Symbol)>,
}

#[derive(Default)]
struct Compiler {
    /// Chain-variable scope at the current compilation point; later
    /// entries shadow earlier ones, mirroring `Env` lookup order.
    scope: Vec<(Symbol, usize)>,
    n_slots: usize,
    globals: Vec<(usize, Symbol)>,
}

impl Compiler {
    /// Allocate a fresh slot for a chain variable (shadowing any earlier
    /// binding of the same name, like `Env::bind` does).
    fn bind(&mut self, var: Symbol) -> usize {
        let slot = self.n_slots;
        self.n_slots += 1;
        self.scope.push((var, slot));
        slot
    }

    /// Resolve a variable reference: innermost chain binding first, then
    /// the (deduplicated) global slots.
    fn slot_of(&mut self, var: Symbol) -> usize {
        if let Some((_, slot)) = self.scope.iter().rev().find(|(v, _)| *v == var) {
            return *slot;
        }
        if let Some((slot, _)) = self.globals.iter().find(|(_, v)| *v == var) {
            return *slot;
        }
        let slot = self.n_slots;
        self.n_slots += 1;
        self.globals.push((slot, var));
        slot
    }

    fn compile_expr(&mut self, e: &Expr) -> Option<FusedExpr> {
        Some(match e {
            Expr::Lit(lit) => FusedExpr::Const(match lit {
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Null => Value::Null,
            }),
            Expr::Var(v) | Expr::Param(v) => FusedExpr::Slot(self.slot_of(*v)),
            Expr::Record(fields) => FusedExpr::Record(
                fields
                    .iter()
                    .map(|(n, fe)| Some((*n, self.compile_expr(fe)?)))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Expr::Tuple(items) => FusedExpr::Tuple(
                items
                    .iter()
                    .map(|i| self.compile_expr(i))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Expr::Proj(inner, field) => {
                FusedExpr::Proj(Box::new(self.compile_expr(inner)?), *field)
            }
            Expr::TupleProj(inner, idx) => {
                FusedExpr::TupleProj(Box::new(self.compile_expr(inner)?), *idx)
            }
            Expr::BinOp(op, lhs, rhs) => FusedExpr::Bin(
                *op,
                Box::new(self.compile_expr(lhs)?),
                Box::new(self.compile_expr(rhs)?),
            ),
            Expr::UnOp(op, inner) => FusedExpr::Un(*op, Box::new(self.compile_expr(inner)?)),
            Expr::If(cond, then, els) => FusedExpr::If(
                Box::new(self.compile_expr(cond)?),
                Box::new(self.compile_expr(then)?),
                Box::new(self.compile_expr(els)?),
            ),
            Expr::Deref(inner) => FusedExpr::Deref(Box::new(self.compile_expr(inner)?)),
            // Anything else — lambdas, nested comprehensions, let,
            // collection literals, heap writes — declines fusion; the plan
            // walk handles it.
            _ => return None,
        })
    }
}

/// Compile a query into a fused pipeline, or `None` when any part of it
/// falls outside the fusible subset.
pub(crate) fn compile(query: &Query) -> Option<FusedQuery<'_>> {
    compile_parts(&query.plan, &query.monoid, &query.head, query.plan_effects)
}

/// [`compile`] over explicit parts — the parallel driver compiles against
/// its *prepared* plan, which shares the query's monoid and head.
pub(crate) fn compile_parts<'q>(
    plan: &'q Plan,
    monoid: &'q Monoid,
    head: &'q Expr,
    plan_effects: Effects,
) -> Option<FusedQuery<'q>> {
    // Vector comprehensions accumulate through indexed slots, not a single
    // accumulator; they never reach plans anyway.
    if matches!(monoid, Monoid::VecOf(_)) {
        return None;
    }
    // Effects: the fused loop shares one immutable heap borrow across the
    // whole fold, so heap writes *and* allocations stay on the plan walk.
    let eff = effects_of(head).join(plan_effects);
    if eff.mutates || eff.allocates {
        return None;
    }
    // Flatten the linear chain; joins make it a tree and decline fusion.
    let mut chain = Vec::new();
    let mut node = plan;
    let spine_root = loop {
        match node {
            Plan::Scan { .. } | Plan::IndexLookup { .. } => break node,
            Plan::Unnest { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Bind { input, .. } => {
                chain.push(node);
                node = input;
            }
            Plan::Join { .. } | Plan::HashProbe { .. } => return None,
        }
    };
    chain.reverse(); // execution order: scan upward.

    let mut c = Compiler::default();
    let root = match spine_root {
        Plan::Scan { var, source } => Root::Scan { slot: c.bind(*var), source },
        Plan::IndexLookup { var, index, key } => {
            Root::Index { slot: c.bind(*var), index, key }
        }
        _ => unreachable!("loop breaks only on scan/index roots"),
    };
    let mut stages = Vec::with_capacity(chain.len());
    for stage in chain {
        match stage {
            Plan::Filter { pred, .. } => stages.push(Stage::Filter(c.compile_expr(pred)?)),
            Plan::Bind { var, expr, .. } => {
                // Compile before binding: the expression sees the *outer*
                // binding of `var`, exactly like the plan walk.
                let expr = c.compile_expr(expr)?;
                stages.push(Stage::Bind { slot: c.bind(*var), expr });
            }
            Plan::Unnest { var, path, .. } => {
                let path = c.compile_expr(path)?;
                stages.push(Stage::Unnest { slot: c.bind(*var), path });
            }
            _ => unreachable!("chain holds only unary stages"),
        }
    }
    let head = c.compile_expr(head)?;
    Some(FusedQuery {
        root,
        stages,
        head,
        monoid,
        n_slots: c.n_slots,
        globals: c.globals,
    })
}

/// The borrowed-or-expanded elements of a generator source. List, set, and
/// vector sources iterate the extent's `Arc<Vec<Value>>` in place — the
/// allocation-free path the fused loop exists for; bags, strings, and the
/// `§4.2` object-singleton idiom expand exactly like
/// [`crate::exec::collection_elements`].
enum Rows<'a> {
    Borrowed(&'a [Value]),
    Owned(Vec<Value>),
}

fn rows_of(v: &Value) -> ExecResult<Rows<'_>> {
    match v {
        Value::Obj(_) => Ok(Rows::Owned(vec![v.clone()])),
        Value::List(items) | Value::Set(items) | Value::Vector(items) => {
            Ok(Rows::Borrowed(items))
        }
        other => other.elements().map(Rows::Owned),
    }
}

impl FusedQuery<'_> {
    /// The row buffer with global slots resolved against `env`; `None`
    /// (→ plan-walk fallback) when a name is missing, so unbound-variable
    /// errors keep their plan-walk shape.
    pub(crate) fn resolve_globals(&self, env: &Env) -> Option<Vec<Value>> {
        let mut slots = vec![Value::Null; self.n_slots];
        for (slot, name) in &self.globals {
            slots[*slot] = env.lookup(*name)?.clone();
        }
        Some(slots)
    }

    /// Fold `part` — pre-extracted root elements — into the target monoid.
    /// Returns the partial value and the row count that reached the
    /// reduction. `stop` is the cross-worker short-circuit flag: absorbed
    /// accumulators raise it, raised flags cut the fold at the next
    /// element, mirroring the plan-walk partition driver.
    pub(crate) fn fold_partition(
        &self,
        part: &[Value],
        heap: &Heap,
        env: &Env,
        stop: Option<&AtomicBool>,
    ) -> ExecResult<Option<(Value, u64)>> {
        let Some(mut slots) = self.resolve_globals(env) else {
            return Ok(None);
        };
        let root_slot = match &self.root {
            Root::Scan { slot, .. } | Root::Index { slot, .. } => *slot,
        };
        let mut acc = Accumulator::new(self.monoid)?;
        let mut rows = 0u64;
        for elem in part {
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                break;
            }
            let f = Frame { slot: root_slot, value: elem, parent: None };
            if !drive(&self.stages, &self.head, &mut slots, Some(&f), heap, &mut acc, &mut rows)? {
                if let Some(s) = stop {
                    s.store(true, Ordering::Relaxed);
                }
                break;
            }
        }
        Ok(Some((acc.finish()?, rows)))
    }
}

/// Run the stage chain for the current row buffer; `false` means the
/// accumulator absorbed and the fold is over.
fn drive(
    stages: &[Stage],
    head: &FusedExpr,
    slots: &mut Vec<Value>,
    frame: Option<&Frame<'_>>,
    heap: &Heap,
    acc: &mut Accumulator,
    rows: &mut u64,
) -> ExecResult<bool> {
    let Some((stage, rest)) = stages.split_first() else {
        let h = head.eval(slots, frame, heap)?;
        acc.push_unit(h)?;
        *rows += 1;
        return Ok(!acc.absorbed());
    };
    match stage {
        Stage::Filter(pred) => {
            if pred.eval_ref(slots, frame, heap)?.as_bool()? {
                drive(rest, head, slots, frame, heap, acc, rows)
            } else {
                Ok(true)
            }
        }
        Stage::Bind { slot, expr } => {
            let v = expr.eval(slots, frame, heap)?;
            slots[*slot] = v;
            drive(rest, head, slots, frame, heap, acc, rows)
        }
        Stage::Unnest { slot, path } => {
            let pv = path.eval(slots, frame, heap)?;
            match rows_of(&pv)? {
                Rows::Borrowed(items) => {
                    for elem in items {
                        let f = Frame { slot: *slot, value: elem, parent: frame };
                        if !drive(rest, head, slots, Some(&f), heap, acc, rows)? {
                            return Ok(false);
                        }
                    }
                }
                Rows::Owned(items) => {
                    for elem in &items {
                        let f = Frame { slot: *slot, value: elem, parent: frame };
                        if !drive(rest, head, slots, Some(&f), heap, acc, rows)? {
                            return Ok(false);
                        }
                    }
                }
            }
            Ok(true)
        }
    }
}

/// Try the fused engine for a full sequential reduction. `Ok(None)` means
/// the query is outside the fusible subset (or a global failed to
/// resolve) and the caller should run the plan walk instead.
pub(crate) fn try_run_reduce(
    query: &Query,
    ev: &mut Evaluator,
    env: &Env,
) -> ExecResult<Option<Value>> {
    let Some(fq) = compile(query) else {
        return Ok(None);
    };
    let Some(mut slots) = fq.resolve_globals(env) else {
        return Ok(None);
    };
    // The root source/key is one expression evaluated once per query; the
    // evaluator runs it so parameters, closures, and error reporting stay
    // exactly as the plan walk has them.
    let source_value;
    let (root_slot, rows) = match &fq.root {
        Root::Scan { slot, source } => {
            source_value = ev.eval(env, source)?;
            (*slot, rows_of(&source_value)?)
        }
        Root::Index { slot, index, key } => {
            let kv = ev.eval(env, key)?;
            (*slot, Rows::Borrowed(index.lookup(&kv)))
        }
    };
    let mut acc = Accumulator::new(fq.monoid)?;
    let mut row_count = 0u64;
    let items: &[Value] = match &rows {
        Rows::Borrowed(items) => items,
        Rows::Owned(items) => items,
    };
    for elem in items {
        let f = Frame { slot: root_slot, value: elem, parent: None };
        if !drive(&fq.stages, &fq.head, &mut slots, Some(&f), &ev.heap, &mut acc, &mut row_count)? {
            break;
        }
    }
    Ok(Some(acc.finish()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::plan_comprehension;
    use monoid_calculus::expr::Expr;

    fn scan_chain() -> Query {
        plan_comprehension(&Expr::comp(
            Monoid::Sum,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
                Expr::pred(Expr::var("r").proj("bed#").ge(Expr::int(1))),
            ],
        ))
        .unwrap()
    }

    #[test]
    fn linear_chains_fuse() {
        let q = scan_chain();
        assert!(fused_eligible(&q));
        assert_eq!(engine_of(&q).as_str(), "fused");
    }

    #[test]
    fn joins_decline_fusion() {
        let q = plan_comprehension(&Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Hotels")),
                Expr::gen("b", Expr::var("Cities")),
            ],
        ))
        .unwrap();
        assert!(!fused_eligible(&q));
        assert_eq!(engine_of(&q), Engine::PlanWalk);
    }

    #[test]
    fn unsupported_head_forms_decline_fusion() {
        // A nested comprehension in the head is outside the compiled
        // expression subset.
        let mut q = scan_chain();
        q.head = Expr::comp(Monoid::Sum, Expr::int(1), vec![]);
        assert!(!fused_eligible(&q));
    }

    #[test]
    fn shadowed_chain_variables_resolve_innermost_first() {
        // bind shadows the scan variable; references after the bind must
        // see the new slot, just like Env lookup.
        let q = plan_comprehension(&Expr::comp(
            Monoid::Sum,
            Expr::var("h"),
            vec![
                Expr::gen("h", Expr::var("Ints")),
                Expr::bind("h", Expr::var("h").add(Expr::int(1))),
            ],
        ))
        .unwrap();
        let fq = compile(&q).expect("fusible");
        let env = Env::empty().bind(
            Symbol::new("Ints"),
            Value::list(vec![Value::Int(10), Value::Int(20)]),
        );
        let heap = Heap::new();
        let (v, rows) = fq.fold_partition(
            &[Value::Int(10), Value::Int(20)],
            &heap,
            &env,
            None,
        )
        .unwrap()
        .unwrap();
        assert_eq!(v, Value::Int(32));
        assert_eq!(rows, 2);
    }

    #[test]
    fn missing_global_declines_at_resolution() {
        // `target` is free in the predicate, so it compiles to a global
        // slot filled from the root environment at setup.
        let q = plan_comprehension(&Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(Expr::var("h").proj("name").eq(Expr::var("target"))),
            ],
        ))
        .unwrap();
        let fq = compile(&q).expect("fusible");
        // No `target` in this environment: resolution fails, the caller
        // falls back to the plan walk (which reports the unbound name).
        assert!(fq.resolve_globals(&Env::empty()).is_none());
        let env = Env::empty().bind(Symbol::new("target"), Value::str("x"));
        assert!(fq.resolve_globals(&env).is_some());
    }
}
