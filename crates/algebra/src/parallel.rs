//! Ordered parallel reduction — a direct payoff of the monoid framework.
//!
//! Every comprehension reduces through an *associative* merge, so a plan
//! can be evaluated by partitioning its outermost generator, running the
//! rest of the pipeline independently per partition, and merging the
//! partial accumulators **in partition order**. Associativity alone makes
//! the split correct: `(a ⊕ b) ⊕ (c ⊕ d) = a ⊕ b ⊕ c ⊕ d` needs no
//! commutativity as long as the partials are joined left-to-right, which
//! is exactly how the driver collects them. List, string, `oset`, and
//! sorted comprehensions therefore parallelize just like sets and sums;
//! idempotent semantics (`set`, `oset`) survive because the ordered merge
//! (`∪`, `∪̇`) deduplicates across partition boundaries.
//!
//! Three extensions take the partitioner beyond a single outer scan:
//!
//! * **Partition points.** The left spine may end in a [`Plan::Scan`] or a
//!   [`Plan::IndexLookup`]; either one's members are chunked across
//!   workers (the lookup key is evaluated once by the driver).
//! * **Shared build sides.** Hash joins on the spine are pre-materialized
//!   *once* by the driver into a [`BuildTable`] behind an `Arc`
//!   ([`Plan::HashProbe`]), instead of every worker rebuilding the same
//!   table. When the build sub-plan is allocation-free and scan-rooted,
//!   the materialization itself is also partitioned across workers.
//! * **Heap reconciliation.** Workers evaluate against cloned heaps; any
//!   objects they allocate (e.g. a `new(…)` head) are appended back into
//!   the shared heap on join, in partition order, with every
//!   worker-created reference remapped by [`value::remap_oids`]. Because
//!   partitions preserve element order, the reconciled heap assigns the
//!   same OIDs sequential execution would — results are byte-identical,
//!   and nothing dangles.
//!
//! The only fallbacks left are physical, not algebraic: `threads ≤ 1`,
//! plans containing `:=` (workers would race on shared object state), and
//! partition sources too small to amortize thread spawn
//! ([`Fallback::TooFewRows`], governed by [`min_rows_per_worker`]). All
//! are reported with a reason — see [`ParallelReport`] and the
//! `parallel_fallback_total{reason}` metric family in [`crate::metrics`].
//! Workers themselves prefer the fused fold in [`crate::fused`] over the
//! per-row plan walk whenever the chain compiles and the probe doesn't
//! meter per-operator rows; [`ParallelReport::fused`] records which
//! engine the partitions ran.
//! For absorbing monoids (`some`/`all`) workers share a stop flag so one
//! worker's absorption short-circuits the rest; if the head also allocates,
//! the reconciled heap may contain extra (unreferenced) objects that
//! sequential short-circuiting would have skipped — the reduced value is
//! unaffected.

use crate::error::ExecResult;
use crate::exec::{self, NoProbe, Probe};
use crate::logical::{BuildTable, JoinKind, Plan, Query};
use monoid_calculus::analysis::{effects_of, Effects};
use monoid_calculus::error::EvalError;
use monoid_calculus::eval::Evaluator;
use monoid_calculus::expr::Expr;
use monoid_calculus::heap::Heap;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::{self, remap_oids, Env, Value};
use monoid_store::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why a parallel execution ran sequentially instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// `threads ≤ 1`: nothing to fan out.
    SingleThread,
    /// The head or plan contains `:=`; concurrent workers would race on
    /// shared object state.
    Mutation,
    /// The partition source holds fewer than `2 ×` the per-worker row
    /// floor ([`min_rows_per_worker`]): spawning threads would cost more
    /// than the rows they'd process. Parallelism is a pessimization here.
    TooFewRows,
}

impl Fallback {
    /// The `reason` label value in `parallel_fallback_total{reason=…}`.
    pub fn as_str(self) -> &'static str {
        match self {
            Fallback::SingleThread => "single-thread",
            Fallback::Mutation => "mutation",
            Fallback::TooFewRows => "too-few-rows",
        }
    }
}

/// The minimum partition-source rows each worker must receive before the
/// driver fans out: the `MONOID_PARALLEL_MIN_ROWS` environment variable
/// when set to a positive integer, else 2. Sources smaller than twice
/// this floor run sequentially ([`Fallback::TooFewRows`]) — thread spawn
/// plus heap clone plus ordered reconciliation dwarfs the per-row work at
/// that size.
pub fn min_rows_per_worker() -> usize {
    match std::env::var("MONOID_PARALLEL_MIN_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => 2,
    }
}

/// What one parallel execution did — workers spawned, rows per worker,
/// pre-materialized build rows, reconciled allocations, or the fallback
/// reason if the engine ran sequentially.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// The thread count the caller asked for.
    pub requested_threads: usize,
    /// Workers actually spawned (0 when the engine fell back).
    pub workers: usize,
    /// `Some(reason)` when the query ran sequentially.
    pub fallback: Option<Fallback>,
    /// Rows each worker pushed into its partial accumulator, in partition
    /// order.
    pub worker_rows: Vec<u64>,
    /// Build-side rows the driver materialized once into shared
    /// [`BuildTable`]s.
    pub prebuilt_rows: u64,
    /// Worker-allocated heap states remapped and appended into the shared
    /// heap on join.
    pub reconciled_objects: u64,
    /// Whether the workers ran the fused fold ([`crate::fused`]) instead
    /// of the per-partition plan walk.
    pub fused: bool,
}

impl ParallelReport {
    fn new(requested_threads: usize) -> ParallelReport {
        ParallelReport {
            requested_threads,
            workers: 0,
            fallback: None,
            worker_rows: Vec::new(),
            prebuilt_rows: 0,
            reconciled_objects: 0,
            fused: false,
        }
    }
}

/// Execute `query` with the outermost generator partitioned over
/// `threads` workers; partials merge in partition order, so every monoid
/// — ordered or not — agrees byte-for-byte with sequential execution.
pub fn execute_parallel(query: &Query, db: &mut Database, threads: usize) -> ExecResult<Value> {
    execute_parallel_traced(query, db, threads).map(|(v, _)| v)
}

/// [`execute_parallel`] with late-bound parameter values (prepared
/// statements): bound into the driver's root environment, so every worker
/// sees them exactly like a persistent root.
pub fn execute_parallel_bound(
    query: &Query,
    db: &mut Database,
    threads: usize,
    params: &[(Symbol, Value)],
) -> ExecResult<Value> {
    execute_parallel_with_bound(query, db, threads, params, |_| NoProbe).map(|(v, _)| v)
}

/// [`execute_parallel`], also returning the [`ParallelReport`].
pub fn execute_parallel_traced(
    query: &Query,
    db: &mut Database,
    threads: usize,
) -> ExecResult<(Value, ParallelReport)> {
    execute_parallel_with(query, db, threads, |_| NoProbe)
}

/// The worker count [`execute_parallel_auto`] uses: the
/// `MONOID_PARALLEL_THREADS` environment variable when set to a positive
/// integer, else the machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var("MONOID_PARALLEL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
    }
}

/// [`execute_parallel`] at [`default_threads`] — the env-overridable entry
/// point CI uses to run the whole suite under a forced thread count.
pub fn execute_parallel_auto(query: &Query, db: &mut Database) -> ExecResult<Value> {
    execute_parallel(query, db, default_threads())
}

/// [`execute_parallel_auto`] with late-bound parameter values.
pub fn execute_parallel_auto_bound(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
) -> ExecResult<Value> {
    execute_parallel_bound(query, db, default_threads(), params)
}

/// The generic engine: `make_probe` builds the per-worker probe from the
/// rewritten worker plan (whose operator numbering differs from the
/// original — the partition root becomes a singleton scan and spine joins
/// become [`Plan::HashProbe`]s). All workers share the one probe, so it
/// must be `Sync`; on fallback the probe is built from the original plan.
pub fn execute_parallel_with<P: Probe + Sync>(
    query: &Query,
    db: &mut Database,
    threads: usize,
    make_probe: impl FnOnce(&Plan) -> P,
) -> ExecResult<(Value, ParallelReport)> {
    execute_parallel_with_bound(query, db, threads, &[], make_probe)
}

/// [`execute_parallel_with`] plus late-bound parameter values layered
/// over the root environment before partitioning.
///
/// Every parallel entry point funnels here, so this is also where the
/// flight recorder learns what the engine did: workers spawned, the
/// fallback reason (if any), and the reduced row count land on whatever
/// [`monoid_calculus::recorder`] scope is open on this thread.
pub fn execute_parallel_with_bound<P: Probe + Sync>(
    query: &Query,
    db: &mut Database,
    threads: usize,
    params: &[(Symbol, Value)],
    make_probe: impl FnOnce(&Plan) -> P,
) -> ExecResult<(Value, ParallelReport)> {
    let result = execute_parallel_inner(query, db, threads, params, make_probe);
    if let Ok((value, report)) = &result {
        monoid_calculus::recorder::note_parallel(
            report.workers as u64,
            report.fallback.map(Fallback::as_str),
        );
        let engine =
            if report.fused { crate::fused::Engine::Fused } else { crate::fused::Engine::PlanWalk };
        monoid_calculus::recorder::note_engine(engine.as_str());
        monoid_calculus::recorder::note_result(value);
    }
    result
}

/// The static half of the engine's fallback decision: the fallback
/// `query` would take *regardless of thread count*. `Some(Mutation)`
/// when the head or plan contains `:=`; `None` when the query is
/// eligible for ordered partitioned reduction. `explain_analyze`
/// surfaces this so "why did this not parallelize" is answerable from a
/// profile alone (the runtime leg — actual workers and the
/// thread-count fallback — lands in the flight recorder).
pub fn static_fallback(query: &Query) -> Option<Fallback> {
    let effects = effects_of(&query.head).join(query.plan_effects);
    effects.mutates.then_some(Fallback::Mutation)
}

fn execute_parallel_inner<P: Probe + Sync>(
    query: &Query,
    db: &mut Database,
    threads: usize,
    params: &[(Symbol, Value)],
    make_probe: impl FnOnce(&Plan) -> P,
) -> ExecResult<(Value, ParallelReport)> {
    if monoid_calculus::analysis::verify_enabled() {
        crate::verify::verify_query(query, db).map_err(|e| EvalError::Other(e.to_string()))?;
    }
    let mut report = ParallelReport::new(threads);
    if threads <= 1 {
        return run_fallback(query, db, params, make_probe, report, Fallback::SingleThread);
    }
    // Static classification: the planner computed `plan_effects` once at
    // plan time; only the head — one small expression, swappable by tests
    // after planning — is re-classified here. The plan is never re-scanned.
    let effects = effects_of(&query.head).join(query.plan_effects);
    if monoid_calculus::analysis::verify_enabled() && effects.mutates != query_mutates(query) {
        monoid_calculus::analysis::record_failure("parallel/effects");
        panic!("static effect analysis disagrees with the runtime plan scan");
    }
    debug_assert_eq!(
        effects.mutates,
        query_mutates(query),
        "static effect analysis disagrees with the runtime plan scan"
    );
    if effects.mutates {
        return run_fallback(query, db, params, make_probe, report, Fallback::Mutation);
    }

    // Walk the left spine top-down: pre-materialize shared build tables in
    // the same order sequential execution would, and collect the partition
    // point (scan/index-lookup members) at the bottom.
    let env = exec::bind_params(db.env(), params);
    let (plan, partition) =
        prepare(&query.plan, db, &env, threads, query.plan_effects, &mut report)?;
    let PartitionPoint { var, elements } = partition;
    if elements.is_empty() {
        return Ok((value::zero(&query.monoid)?, report));
    }
    // Runtime floor: fanning out fewer than `floor` rows per worker loses
    // to thread spawn + heap clone + reconciliation. With fewer than two
    // workers' worth of rows the whole query runs sequentially (and still
    // gets the fused loop when the probe permits).
    let floor = min_rows_per_worker();
    if elements.len() < 2 * floor {
        return run_fallback(query, db, params, make_probe, report, Fallback::TooFewRows);
    }

    let worker_plan = replace_partition_root(&plan);
    // Workers run the fused fold when the chain compiles and the probe
    // doesn't count rows (fused loops have no per-operator attribution to
    // feed a metering probe). Compiled once here; shared by reference.
    let fused = if P::COUNTS {
        None
    } else {
        crate::fused::compile_parts(&plan, &query.monoid, &query.head, query.plan_effects)
    };
    let stop = AtomicBool::new(false);
    let use_stop = matches!(query.monoid, Monoid::Some | Monoid::All);
    let chunk = elements.len().div_ceil(threads).max(floor);

    // Fused workers never allocate or mutate (the compiler declines those
    // effects), so they share the database heap *by reference* — no
    // per-worker heap clone, no OID reconciliation on join. Global
    // resolution is checked once up front; a missing name falls through
    // to the plan-walk workers, which report it as the plan walk would.
    if let Some(fq) = &fused {
        if fq.resolve_globals(&env).is_some() {
            let heap: &Heap = db.heap();
            let results = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for part in elements.chunks(chunk) {
                    let (env, stop) = (&env, &stop);
                    handles.push(scope.spawn(move || -> ExecResult<(Value, u64)> {
                        fq.fold_partition(part, heap, env, use_stop.then_some(stop))?
                            .ok_or_else(|| {
                                EvalError::Other("fused global resolution raced".into())
                            })
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().map_err(|_| EvalError::Other("worker panicked".into()))?)
                    .collect::<ExecResult<Vec<_>>>()
            })?;
            report.workers = results.len();
            report.fused = true;
            let mut acc = value::zero(&query.monoid)?;
            for (partial, rows) in results {
                report.worker_rows.push(rows);
                acc = value::merge(&query.monoid, &acc, &partial)?;
            }
            return Ok((acc, report));
        }
    }

    let probe = make_probe(&worker_plan);
    let base = db.heap().len();
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in elements.chunks(chunk) {
            let env = env.clone();
            let heap = db.heap().clone();
            let (worker_plan, probe, stop) = (&worker_plan, &probe, &stop);
            handles.push(scope.spawn(move || -> ExecResult<(Value, Heap, u64)> {
                let mut ev = Evaluator::with_heap(heap);
                let (partial, rows) = run_partition(
                    worker_plan,
                    query,
                    &mut ev,
                    &env,
                    part,
                    var,
                    probe,
                    use_stop.then_some(stop),
                )?;
                Ok((partial, ev.heap, rows))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| EvalError::Other("worker panicked".into()))?)
            .collect::<ExecResult<Vec<_>>>()
    })?;
    report.workers = results.len();

    // Join: reconcile worker heaps into the shared heap and merge partials,
    // both in partition order. Appending each worker's new states after
    // `delta` earlier ones reproduces sequential allocation order exactly,
    // so the remapped references match what sequential execution returns.
    let mut acc = value::zero(&query.monoid)?;
    for (partial, worker_heap, rows) in results {
        report.worker_rows.push(rows);
        let heap = db.heap_mut();
        let delta = (heap.len() - base) as u64;
        for state in worker_heap.states_from(base) {
            heap.alloc(remap_oids(state, base as u64, delta));
            report.reconciled_objects += 1;
        }
        let partial = remap_oids(&partial, base as u64, delta);
        acc = value::merge(&query.monoid, &acc, &partial)?;
    }
    Ok((acc, report))
}

/// Sequential execution with the fallback reason recorded. A fallback is
/// not a slow path: when the probe doesn't meter rows, the sequential run
/// still goes through the fused fold if the chain compiles.
fn run_fallback<P: Probe>(
    query: &Query,
    db: &mut Database,
    params: &[(Symbol, Value)],
    make_probe: impl FnOnce(&Plan) -> P,
    mut report: ParallelReport,
    reason: Fallback,
) -> ExecResult<(Value, ParallelReport)> {
    report.fallback = Some(reason);
    if !P::COUNTS {
        if let Some(v) = exec::try_execute_fused_bound(query, db, params)? {
            report.fused = true;
            return Ok((v, report));
        }
    }
    let probe = make_probe(&query.plan);
    let (v, _) = exec::execute_probed_bound(query, db, params, &probe)?;
    Ok((v, report))
}

/// The partitionable generator at the bottom of the left spine: its
/// variable and the members the driver distributes across workers.
struct PartitionPoint {
    var: Symbol,
    elements: Vec<Value>,
}

/// Evaluate an expression against the database heap (taken and restored).
fn eval_in_db(db: &mut Database, env: &Env, e: &Expr) -> ExecResult<Value> {
    let heap = std::mem::take(db.heap_mut());
    let mut ev = Evaluator::with_heap(heap);
    let result = ev.eval(env, e);
    *db.heap_mut() = ev.heap;
    result
}

/// Top-down spine walk: pre-materialize hash-join (and cross-product)
/// build sides into shared [`BuildTable`]s — in the order sequential
/// execution would materialize them — and resolve the partition point at
/// the spine's bottom.
fn prepare(
    plan: &Plan,
    db: &mut Database,
    env: &Env,
    threads: usize,
    plan_effects: Effects,
    report: &mut ParallelReport,
) -> ExecResult<(Plan, PartitionPoint)> {
    match plan {
        Plan::Scan { var, source } => {
            let sv = eval_in_db(db, env, source)?;
            let elements = exec::collection_elements(&sv)?;
            Ok((plan.clone(), PartitionPoint { var: *var, elements }))
        }
        Plan::IndexLookup { var, index, key } => {
            let kv = eval_in_db(db, env, key)?;
            let elements = index.lookup(&kv).to_vec();
            Ok((plan.clone(), PartitionPoint { var: *var, elements }))
        }
        Plan::Unnest { input, var, path } => {
            let (input, pp) = prepare(input, db, env, threads, plan_effects, report)?;
            Ok((Plan::Unnest { input: Box::new(input), var: *var, path: path.clone() }, pp))
        }
        Plan::Filter { input, pred } => {
            let (input, pp) = prepare(input, db, env, threads, plan_effects, report)?;
            Ok((Plan::Filter { input: Box::new(input), pred: pred.clone() }, pp))
        }
        Plan::Bind { input, var, expr } => {
            let (input, pp) = prepare(input, db, env, threads, plan_effects, report)?;
            Ok((Plan::Bind { input: Box::new(input), var: *var, expr: expr.clone() }, pp))
        }
        Plan::Join { left, right, on, kind } => {
            // Hash joins and cross products (`on` empty) have
            // left-independent build sides: materialize once, share with
            // every worker. A keyed nested-loop join evaluates its right
            // keys against combined rows, so it stays per-worker (the
            // planner never emits that shape).
            if *kind == JoinKind::Hash || on.is_empty() {
                let table = build_table(right, on, db, env, threads, plan_effects, report)?;
                let (left, pp) = prepare(left, db, env, threads, plan_effects, report)?;
                let on_left = on.iter().map(|(lk, _)| lk.clone()).collect();
                Ok((Plan::HashProbe { left: Box::new(left), table, on_left }, pp))
            } else {
                let (left, pp) = prepare(left, db, env, threads, plan_effects, report)?;
                Ok((
                    Plan::Join {
                        left: Box::new(left),
                        right: right.clone(),
                        on: on.clone(),
                        kind: *kind,
                    },
                    pp,
                ))
            }
        }
        Plan::HashProbe { left, table, on_left } => {
            let (left, pp) = prepare(left, db, env, threads, plan_effects, report)?;
            Ok((
                Plan::HashProbe {
                    left: Box::new(left),
                    table: table.clone(),
                    on_left: on_left.clone(),
                },
                pp,
            ))
        }
    }
}

/// Materialize a join's right side once into a shared [`BuildTable`]:
/// binding deltas plus key → rows. Allocation-free, scan-rooted build
/// plans are themselves partitioned across workers; anything else
/// materializes sequentially against the database heap (always safe —
/// the driver owns the heap here).
fn build_table(
    right: &Plan,
    on: &[(Expr, Expr)],
    db: &mut Database,
    env: &Env,
    threads: usize,
    plan_effects: Effects,
    report: &mut ParallelReport,
) -> ExecResult<Arc<BuildTable>> {
    let vars = right.bound_vars();
    let keyed_rows = parallel_build_rows(right, on, db, env, threads, plan_effects)?;
    let keyed_rows = match keyed_rows {
        Some(rows) => rows,
        None => {
            // Sequential: materialize against the real heap.
            let heap = std::mem::take(db.heap_mut());
            let mut ev = Evaluator::with_heap(heap);
            let result = (|| {
                let rows = exec::materialize(right, 0, &mut ev, env, &NoProbe)?;
                let mut scratch = value::ScratchRow::new();
                rows.into_iter()
                    .map(|delta| {
                        let key = build_key(&mut ev, &mut scratch, env, &delta, on)?;
                        Ok((delta, key))
                    })
                    .collect::<ExecResult<Vec<_>>>()
            })();
            *db.heap_mut() = ev.heap;
            result?
        }
    };
    report.prebuilt_rows += keyed_rows.len() as u64;
    let mut table = BuildTable { vars, rows: Vec::with_capacity(keyed_rows.len()), ..Default::default() };
    for (i, (delta, key)) in keyed_rows.into_iter().enumerate() {
        table.rows.push(delta);
        table.index.entry(key).or_default().push(i);
    }
    Ok(Arc::new(table))
}

/// The build side's key values for one materialized delta — evaluated
/// against the top environment plus the delta, mirroring the executor's
/// hash-build semantics. The caller's [`value::ScratchRow`] supplies the
/// row, so repeated keying reuses one chain of environment nodes instead
/// of allocating per delta.
fn build_key(
    ev: &mut Evaluator,
    scratch: &mut value::ScratchRow,
    env: &Env,
    delta: &[(Symbol, Value)],
    on: &[(Expr, Expr)],
) -> ExecResult<Vec<Value>> {
    let row = scratch.fill(env, delta);
    on.iter().map(|(_, rk)| ev.eval(row, rk)).collect()
}

/// Partitioned build-side materialization. Returns `None` when the build
/// plan is not eligible (allocating, not scan-rooted, or too small to be
/// worth fanning out) — the caller falls back to sequential
/// materialization.
#[allow(clippy::type_complexity)]
fn parallel_build_rows(
    right: &Plan,
    on: &[(Expr, Expr)],
    db: &mut Database,
    env: &Env,
    threads: usize,
    plan_effects: Effects,
) -> ExecResult<Option<Vec<(Vec<(Symbol, Value)>, Vec<Value>)>>> {
    // Static gate: `plan_effects` covers every expression in the whole
    // plan, so `!plan_effects.allocates` implies this build side is
    // allocation-free (conservative in the other direction). The old
    // per-build runtime scan survives only as the debug cross-check.
    debug_assert!(
        plan_effects.allocates || !plan_allocates(right),
        "static effect analysis disagrees with the runtime build-side scan"
    );
    if threads < 2 || plan_effects.allocates {
        return Ok(None);
    }
    let Some((bvar, bsource)) = spine_scan(right) else {
        return Ok(None);
    };
    let bsource = bsource.clone();
    let sv = eval_in_db(db, env, &bsource)?;
    let elements = exec::collection_elements(&sv)?;
    if elements.len() < 2 {
        // Materializing a 0/1-element source in parallel is pure overhead;
        // let the sequential path handle it (it re-evaluates the source,
        // which is side-effect-free here: the plan is allocation-free).
        return Ok(None);
    }
    let worker_plan = replace_partition_root(right);
    let chunk = elements.len().div_ceil(threads).max(1);
    let parts = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in elements.chunks(chunk) {
            let env = env.clone();
            let heap = db.heap().clone();
            let worker_plan = &worker_plan;
            handles.push(scope.spawn(
                move || -> ExecResult<Vec<(Vec<(Symbol, Value)>, Vec<Value>)>> {
                    let mut ev = Evaluator::with_heap(heap);
                    let mut scratch = value::ScratchRow::new();
                    let mut out = Vec::new();
                    for elem in part {
                        let row = env.bind(bvar, elem.clone());
                        let rows = exec::materialize(worker_plan, 0, &mut ev, &row, &NoProbe)?;
                        for delta in rows {
                            let key = build_key(&mut ev, &mut scratch, &env, &delta, on)?;
                            out.push((delta, key));
                        }
                    }
                    Ok(out)
                },
            ));
        }
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| EvalError::Other("build worker panicked".into()))?)
            .collect::<ExecResult<Vec<_>>>()
    })?;
    // Concatenation in partition order = sequential materialization order.
    Ok(Some(parts.into_iter().flatten().collect()))
}

/// The scan at the bottom of `plan`'s left spine, if that is what the
/// spine ends in (used to decide build-side partitioning).
fn spine_scan(plan: &Plan) -> Option<(Symbol, &Expr)> {
    match plan {
        Plan::Scan { var, source } => Some((*var, source)),
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            spine_scan(input)
        }
        Plan::Join { left, .. } | Plan::HashProbe { left, .. } => spine_scan(left),
        Plan::IndexLookup { .. } => None,
    }
}

/// The plan with the partition root (the spine-bottom scan or index
/// lookup) replaced by a singleton scan over the already-bound partition
/// variable: the driver binds `var` per element, and scanning `[var]`
/// rebinds it exactly once through the normal pipeline.
fn replace_partition_root(plan: &Plan) -> Plan {
    let singleton = |var: Symbol| Plan::Scan {
        var,
        source: Expr::CollLit(Monoid::List, vec![Expr::Var(var)]),
    };
    match plan {
        Plan::Scan { var, .. } => singleton(*var),
        Plan::IndexLookup { var, .. } => singleton(*var),
        Plan::Unnest { input, var, path } => Plan::Unnest {
            input: Box::new(replace_partition_root(input)),
            var: *var,
            path: path.clone(),
        },
        Plan::Filter { input, pred } => Plan::Filter {
            input: Box::new(replace_partition_root(input)),
            pred: pred.clone(),
        },
        Plan::Bind { input, var, expr } => Plan::Bind {
            input: Box::new(replace_partition_root(input)),
            var: *var,
            expr: expr.clone(),
        },
        Plan::Join { left, right, on, kind } => Plan::Join {
            left: Box::new(replace_partition_root(left)),
            right: right.clone(),
            on: on.clone(),
            kind: *kind,
        },
        Plan::HashProbe { left, table, on_left } => Plan::HashProbe {
            left: Box::new(replace_partition_root(left)),
            table: table.clone(),
            on_left: on_left.clone(),
        },
    }
}

/// One worker: push every element of `part` through the rewritten
/// pipeline into a local accumulator. `stop` (absorbing monoids only)
/// lets workers short-circuit each other.
#[allow(clippy::too_many_arguments)]
fn run_partition<P: Probe>(
    plan: &Plan,
    query: &Query,
    ev: &mut Evaluator,
    env: &Env,
    part: &[Value],
    var: Symbol,
    probe: &P,
    stop: Option<&AtomicBool>,
) -> ExecResult<(Value, u64)> {
    let mut acc = value::Accumulator::new(&query.monoid)?;
    let mut rows = 0u64;
    for elem in part {
        if let Some(s) = stop {
            if s.load(Ordering::Relaxed) {
                break;
            }
        }
        let row = env.bind(var, elem.clone());
        let completed = exec::run_plan(plan, 0, ev, &row, probe, &mut |ev, r| {
            let h = ev.eval(r, &query.head)?;
            acc.push_unit(h)?;
            rows += 1;
            if acc.absorbed() {
                if let Some(s) = stop {
                    s.store(true, Ordering::Relaxed);
                }
                return Ok(false);
            }
            Ok(true)
        })?;
        if !completed {
            break;
        }
    }
    Ok((acc.finish()?, rows))
}

/// Fresh re-scan of the whole query for `:=` — the cross-check for the
/// cached `plan_effects` (which goes stale only if the plan is altered
/// after planning). Referenced only from `debug_assert!`s; release builds
/// trust the cached classification.
fn query_mutates(query: &Query) -> bool {
    effects_of(&query.head).join(query.plan.effects()).mutates
}

/// Fresh re-scan of a build side for `new` — cross-check for the cached
/// whole-plan allocation flag. Referenced only from `debug_assert!`s.
fn plan_allocates(plan: &Plan) -> bool {
    plan.effects().allocates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexCatalog;
    use crate::logical::plan_comprehension;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn parallel_agrees_with_sequential() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        for threads in [2, 4, 7] {
            let par = execute_parallel(&plan, &mut db, threads).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn set_results_agree_in_parallel() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let q = Expr::comp(
            Monoid::Set,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        let par = execute_parallel(&plan, &mut db, 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn ordered_monoids_parallelize_with_ordered_merge() {
        // List and string comprehensions are order-sensitive; the ordered
        // merge of partials makes them parallelizable anyway — with ≥ 2
        // workers and byte-identical output.
        let mut db = travel::generate(TravelScale::small(), 3);
        for monoid in [Monoid::List, Monoid::OSet, Monoid::Sorted, Monoid::SortedBag] {
            let q = Expr::comp(
                monoid.clone(),
                Expr::var("r").proj("price"),
                vec![
                    Expr::gen("h", Expr::var("Hotels")),
                    Expr::gen("r", Expr::var("h").proj("rooms")),
                ],
            );
            let plan = plan_comprehension(&q).unwrap();
            let seq = crate::exec::execute(&plan, &mut db).unwrap();
            let (par, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
            assert_eq!(report.fallback, None, "{monoid}: no fallback");
            assert!(report.workers >= 2, "{monoid}: {} workers", report.workers);
            assert_eq!(seq, par, "{monoid}");
        }
        // A string concatenation over hotel names.
        let q = Expr::comp(
            Monoid::Str,
            Expr::var("h").proj("name"),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        let (par, report) = execute_parallel_traced(&plan, &mut db, 3).unwrap();
        assert!(report.workers >= 2);
        assert_eq!(seq, par, "string concatenation is order-exact");
    }

    #[test]
    fn allocating_heads_reconcile_worker_heaps() {
        // Regression: workers used to evaluate `new(…)` against cloned
        // heaps that were dropped on join, returning dangling identities.
        // The planner rejects impure comprehensions, so build the query by
        // hand: bag{ new(⟨name: h.name⟩) | h ← Hotels }.
        let pure = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let mut plan = plan_comprehension(&pure).unwrap();
        plan.head =
            Expr::new_obj(Expr::record(vec![("name", Expr::var("h").proj("name"))]));

        let mut seq_db = travel::generate(TravelScale::tiny(), 9);
        let mut par_db = seq_db.clone();
        let seq = crate::exec::execute(&plan, &mut seq_db).unwrap();
        let (par, report) = execute_parallel_traced(&plan, &mut par_db, 4).unwrap();
        assert!(report.workers >= 2);
        assert!(report.reconciled_objects > 0, "workers allocated");
        // Identical values (same OIDs in the same order)…
        assert_eq!(seq, par);
        // …backed by identical heaps: every returned identity dereferences
        // to the same state on both sides. Under the old engine the
        // parallel heap was missing these objects entirely.
        assert_eq!(seq_db.object_count(), par_db.object_count());
        for member in par.elements().unwrap() {
            let Value::Obj(oid) = member else { panic!("head allocates") };
            assert_eq!(
                seq_db.state(oid).unwrap(),
                par_db.state(oid).unwrap(),
                "state of {oid:?}"
            );
        }
    }

    #[test]
    fn tiny_index_buckets_fall_back_with_too_few_rows() {
        let mut db = travel::generate(TravelScale::with_hotels(60), 5);
        let mut cat = IndexCatalog::new();
        cat.build(&db, "Hotels", "name").unwrap();
        // Every generated hotel name is distinct, so the looked-up bucket
        // holds one member — far below the per-worker row floor. The
        // driver must refuse to fan out (spawning a thread for one row is
        // a pessimization) and still return the sequential answer.
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("r").proj("price"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(Expr::var("h").proj("name").eq(Expr::str("hotel_0_0"))),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (indexed, hits) = crate::index::apply_indexes(&plan, &cat, &db);
        assert_eq!(hits, 1);
        let seq = crate::exec::execute(&indexed, &mut db).unwrap();
        let (par, report) = execute_parallel_traced(&indexed, &mut db, 4).unwrap();
        assert_eq!(report.fallback, Some(Fallback::TooFewRows));
        assert_eq!(report.workers, 0);
        assert_eq!(seq, par);
    }

    #[test]
    fn sources_at_the_floor_boundary_still_fan_out() {
        // tiny = 3 cities × 2 hotels = 6 root rows ≥ 2 × the default
        // floor of 2, so the driver parallelizes; a 3-row slice of the
        // same extent would not (covered by the bucket test above).
        let mut db = travel::generate(TravelScale::tiny(), 3);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (v, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
        assert_eq!(v, Value::Int(db.extent_len("Hotels") as i64));
        assert_eq!(report.fallback, None);
        assert!(report.workers >= 2, "{} workers", report.workers);
        // Each worker got at least the floor's worth of rows.
        let floor = min_rows_per_worker();
        assert!(report.worker_rows.len() <= db.extent_len("Hotels") / floor);
    }

    #[test]
    fn parallel_workers_run_the_fused_fold() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute_plan_walk(&plan, &mut db).unwrap();
        let (par, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
        assert!(report.fused, "linear chain should run fused in workers");
        assert_eq!(seq, par);
        // A hash join declines fusion: workers fall back to the plan walk
        // but the query still parallelizes.
        let j = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Hotels")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(Expr::var("a").proj("name").eq(Expr::var("b").proj("name"))),
            ],
        );
        let jplan = plan_comprehension(&j).unwrap();
        let jseq = crate::exec::execute_plan_walk(&jplan, &mut db).unwrap();
        let (jpar, jreport) = execute_parallel_traced(&jplan, &mut db, 4).unwrap();
        assert!(!jreport.fused, "joins stay on the plan walk");
        assert_eq!(jseq, jpar);
    }

    #[test]
    fn hash_join_build_side_is_shared_and_prebuilt() {
        let mut db = travel::generate(TravelScale::small(), 3);
        // Self-join Hotels on name: planner picks a hash join.
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Hotels")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(Expr::var("a").proj("name").eq(Expr::var("b").proj("name"))),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        assert!(plan.plan.uses_hash_join());
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        let (par, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
        assert_eq!(seq, par);
        assert_eq!(
            report.prebuilt_rows,
            db.extent_len("Hotels") as u64,
            "build side materialized once, not once per worker"
        );
        assert!(report.workers >= 2);
    }

    #[test]
    fn mutating_queries_fall_back_with_a_reason() {
        // all{ e := ⟨…⟩ | e ← Employees } — impure, so hand-built.
        let pure = Expr::comp(
            Monoid::All,
            Expr::bool(true),
            vec![Expr::gen("e", Expr::var("Employees"))],
        );
        let mut plan = plan_comprehension(&pure).unwrap();
        plan.head = Expr::var("e").assign(Expr::record(vec![
            ("name", Expr::var("e").proj("name")),
            ("salary", Expr::int(1)),
        ]));
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let (v, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert_eq!(report.fallback, Some(Fallback::Mutation));
        assert_eq!(report.workers, 0);
        // The sequential fallback still applied the updates.
        let salaries = Expr::comp(
            Monoid::Set,
            Expr::var("e").proj("salary"),
            vec![Expr::gen("e", Expr::var("Employees"))],
        );
        let sp = plan_comprehension(&salaries).unwrap();
        assert_eq!(
            crate::exec::execute(&sp, &mut db).unwrap(),
            Value::set_from(vec![Value::Int(1)])
        );
    }

    #[test]
    fn single_thread_falls_back_with_a_reason() {
        let mut db = travel::generate(TravelScale::tiny(), 3);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (v, report) = execute_parallel_traced(&plan, &mut db, 1).unwrap();
        assert_eq!(v, Value::Int(db.extent_len("Hotels") as i64));
        assert_eq!(report.fallback, Some(Fallback::SingleThread));
    }

    #[test]
    fn empty_partition_source_returns_zero() {
        let mut db = travel::generate(TravelScale::tiny(), 3);
        let q = Expr::comp(
            Monoid::List,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::CollLit(Monoid::List, vec![]))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (v, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
        assert_eq!(v, Value::list(vec![]));
        assert_eq!(report.workers, 0);
        assert_eq!(report.fallback, None);
    }

    #[test]
    fn absorbing_monoids_short_circuit_across_workers() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let q = Expr::comp(
            Monoid::Some,
            Expr::var("h").proj("name").eq(Expr::str("hotel_0_0")),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let plan = plan_comprehension(&q).unwrap();
        let (v, report) = execute_parallel_traced(&plan, &mut db, 4).unwrap();
        assert_eq!(v, Value::Bool(true));
        let total: u64 = report.worker_rows.iter().sum();
        assert!(
            total < db.extent_len("Hotels") as u64,
            "workers stopped early: {total} rows"
        );
    }

    #[test]
    fn default_threads_reads_the_env_override() {
        // Can't set process env safely in a threaded test run; just check
        // the fallback path yields something sensible.
        assert!(default_threads() >= 1);
    }
}
