//! Parallel reduction — a direct payoff of the monoid framework.
//!
//! Because every comprehension reduces through an *associative* merge,
//! any plan whose output monoid is also *commutative* can be evaluated by
//! partitioning the outermost scan, running the rest of the pipeline
//! independently per partition, and merging the partial accumulators.
//! Associativity makes the split correct; commutativity makes it correct
//! regardless of partition completion order. This is not in the paper, but
//! it is the kind of evaluation freedom the algebraic framing buys — and
//! the ablation benchmark B6 measures it.

use crate::error::ExecResult;
use crate::logical::{Plan, Query};
use monoid_calculus::error::EvalError;
use monoid_calculus::eval::Evaluator;
use monoid_calculus::value::{self, Value};
use monoid_store::Database;

/// Execute `query` with the outer scan partitioned over `threads` workers.
/// Falls back to sequential execution when the plan has no partitionable
/// outer scan, the monoid is not commutative, or `threads <= 1`.
pub fn execute_parallel(
    query: &Query,
    db: &mut Database,
    threads: usize,
) -> ExecResult<Value> {
    if threads <= 1 || !query.monoid.props().commutative {
        return crate::exec::execute(query, db);
    }
    // Find the outermost scan by walking the left spine.
    let Some((scan_var, scan_source)) = outer_scan(&query.plan) else {
        return crate::exec::execute(query, db);
    };

    // Evaluate the scan source once.
    let env = db.env();
    let elements = {
        let heap = std::mem::take(db.heap_mut());
        let mut ev = Evaluator::with_heap(heap);
        let sv = ev.eval(&env, scan_source);
        *db.heap_mut() = ev.heap;
        sv?.elements()?
    };
    if elements.is_empty() {
        return value::zero(&query.monoid);
    }

    let chunk = elements.len().div_ceil(threads);
    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in elements.chunks(chunk) {
            let env = env.clone();
            let heap = db.heap().clone();
            let query = query.clone();
            handles.push(scope.spawn(move || -> ExecResult<Value> {
                let mut ev = Evaluator::with_heap(heap);
                let mut acc = value::Accumulator::new(&query.monoid)?;
                let sub = replace_outer_scan_rest(&query.plan);
                for elem in part {
                    let row = env.bind(scan_var, elem.clone());
                    run_rest(&sub, &mut ev, &row, &query, &mut acc)?;
                }
                acc.finish()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| EvalError::Other("worker panicked".into()))?)
            .collect::<ExecResult<Vec<Value>>>()
    })?;

    let mut acc = value::zero(&query.monoid)?;
    for p in partials {
        acc = value::merge(&query.monoid, &acc, &p)?;
    }
    Ok(acc)
}

/// The outermost scan on the plan's left spine, if any.
fn outer_scan(plan: &Plan) -> Option<(monoid_calculus::symbol::Symbol, &monoid_calculus::expr::Expr)> {
    match plan {
        Plan::Scan { var, source } => Some((*var, source)),
        Plan::Unnest { input, .. } | Plan::Filter { input, .. } | Plan::Bind { input, .. } => {
            outer_scan(input)
        }
        Plan::Join { left, .. } => outer_scan(left),
        Plan::IndexLookup { .. } => None,
    }
}

/// The plan with the outermost scan replaced by a pass-through (the scan
/// variable is pre-bound by the partition driver). Represented by cloning
/// and marking: we reuse `Plan` and substitute the scan with a scan over a
/// singleton — simplest correct encoding without a new node type.
fn replace_outer_scan_rest(plan: &Plan) -> Plan {
    match plan {
        Plan::Scan { var, .. } => Plan::Scan {
            var: *var,
            // The driver binds `var` already; scanning `[var]` rebinds it
            // to itself exactly once.
            source: monoid_calculus::expr::Expr::CollLit(
                monoid_calculus::monoid::Monoid::List,
                vec![monoid_calculus::expr::Expr::Var(*var)],
            ),
        },
        Plan::Unnest { input, var, path } => Plan::Unnest {
            input: Box::new(replace_outer_scan_rest(input)),
            var: *var,
            path: path.clone(),
        },
        Plan::Filter { input, pred } => Plan::Filter {
            input: Box::new(replace_outer_scan_rest(input)),
            pred: pred.clone(),
        },
        Plan::Bind { input, var, expr } => Plan::Bind {
            input: Box::new(replace_outer_scan_rest(input)),
            var: *var,
            expr: expr.clone(),
        },
        Plan::Join { left, right, on, kind } => Plan::Join {
            left: Box::new(replace_outer_scan_rest(left)),
            right: right.clone(),
            on: on.clone(),
            kind: *kind,
        },
        Plan::IndexLookup { .. } => plan.clone(),
    }
}

fn run_rest(
    plan: &Plan,
    ev: &mut Evaluator,
    row: &monoid_calculus::value::Env,
    query: &Query,
    acc: &mut value::Accumulator,
) -> ExecResult<()> {
    crate::exec::run_plan(plan, 0, ev, row, &crate::exec::NoProbe, &mut |ev, r| {
        let h = ev.eval(r, &query.head)?;
        acc.push_unit(h)?;
        Ok(true)
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::plan_comprehension;
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn parallel_agrees_with_sequential() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        for threads in [2, 4, 7] {
            let par = execute_parallel(&plan, &mut db, threads).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn set_results_agree_in_parallel() {
        let mut db = travel::generate(TravelScale::small(), 3);
        let q = Expr::comp(
            Monoid::Set,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        let par = execute_parallel(&plan, &mut db, 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn non_commutative_falls_back() {
        // A list comprehension is order-sensitive: execute_parallel must
        // fall back to sequential and still be correct.
        let mut db = travel::generate(TravelScale::tiny(), 3);
        let q = Expr::comp(
            Monoid::List,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        // Cities is a bag extent: bag → list is illegal. Use a city's
        // hotel list instead (list source).
        let _ = q;
        let q = Expr::comp(
            Monoid::List,
            Expr::var("r").proj("price"),
            vec![
                Expr::gen(
                    "h",
                    Expr::UnOp(
                        monoid_calculus::expr::UnOp::Element,
                        Box::new(Expr::comp(
                            Monoid::Bag,
                            Expr::var("c"),
                            vec![
                                Expr::gen("c", Expr::var("Cities")),
                                Expr::pred(
                                    Expr::var("c").proj("name").eq(Expr::str("Portland")),
                                ),
                            ],
                        )),
                    )
                    .proj("hotels"),
                ),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let plan = plan_comprehension(&q).unwrap();
        let seq = crate::exec::execute(&plan, &mut db).unwrap();
        let par = execute_parallel(&plan, &mut db, 4).unwrap();
        assert_eq!(seq, par);
    }
}
