//! Errors from plan construction and execution.

use monoid_calculus::error::EvalError;
use std::fmt;

/// Why an expression could not be compiled into an algebra plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Only comprehensions compile to plans; normalize first.
    NotAComprehension,
    /// The expression contains heap effects (`new`/`:=`), which the
    /// pipelined algebra does not execute (use the evaluator).
    Impure,
    /// Vector comprehensions have their own evaluation path.
    VectorComprehension,
    /// A qualifier form the planner does not handle.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NotAComprehension => {
                write!(f, "only (normalized) comprehensions compile to algebra plans")
            }
            PlanError::Impure => write!(
                f,
                "expression performs heap effects; run it through the evaluator instead"
            ),
            PlanError::VectorComprehension => {
                write!(f, "vector comprehensions evaluate directly, not via the algebra")
            }
            PlanError::Unsupported(msg) => write!(f, "unsupported for planning: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Execution failures are evaluation failures.
pub type ExecResult<T> = Result<T, EvalError>;
