//! The `regress --compare` gate at the process level: the binary must
//! exit 0 on a self-compare and nonzero against a synthetically
//! regressed (zeroed) baseline. The verdict logic itself is unit-tested
//! in `src/compare.rs`; this test pins the exit codes CI relies on.

use monoid_calculus::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_regress"))
        .args(args)
        .env_remove("MONOID_SLOW_QUERY_NANOS")
        .output()
        .expect("regress binary runs")
}

#[test]
fn compare_gate_exit_codes() {
    let dir = std::env::temp_dir().join(format!("regress-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| -> String {
        let p: PathBuf = dir.join(name);
        p.to_str().unwrap().to_string()
    };

    // Produce a baseline.
    let baseline = path("baseline.json");
    let out = run(&["--quick", "--out", &baseline]);
    assert!(out.status.success(), "baseline run failed: {}", String::from_utf8_lossy(&out.stderr));

    // Self-ish compare (fresh quick run vs the baseline just written,
    // with a tolerance far beyond run-to-run jitter): exit 0.
    let out = run(&[
        "--quick",
        "--out",
        &path("fresh.json"),
        "--compare",
        &baseline,
        "--tolerance",
        "100000",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "self-compare failed the gate:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: PASS"));

    // Zero the baseline's gated latency fields: every fresh number now
    // exceeds tolerance, so the gate must fail with exit code 1.
    let text = std::fs::read_to_string(&baseline).unwrap();
    let regressed = path("regressed.json");
    std::fs::write(&regressed, zero_latencies(&text)).unwrap();
    let out = run(&[
        "--quick",
        "--out",
        &path("fresh2.json"),
        "--compare",
        &regressed,
        "--min-delta",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "regressed baseline passed the gate:\n{}",
        String::from_utf8_lossy(&out.stdout),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));

    // A malformed baseline is a usage error, not a crash.
    let out = run(&["--quick", "--out", &path("fresh3.json"), "--compare", &path("missing.json")]);
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

/// Rewrite every gated latency field of a serialized report to 0.
fn zero_latencies(report_text: &str) -> String {
    let mut report = Json::parse(report_text).expect("baseline is JSON");
    let Json::Obj(sections) = &mut report else { panic!("baseline is not an object") };
    for (section, gated) in
        [("queries", vec!["median_nanos", "p95_nanos"]), ("prepared", vec!["warm_median_nanos"])]
    {
        let Some(Json::Arr(cases)) =
            sections.iter_mut().find(|(k, _)| k == section).map(|(_, v)| v)
        else {
            panic!("baseline has no `{section}` array");
        };
        for case in cases {
            let Json::Obj(fields) = case else { continue };
            for (k, v) in fields.iter_mut() {
                if gated.contains(&k.as_str()) {
                    *v = Json::Int(0);
                }
            }
        }
    }
    report.render_pretty()
}
