//! B6 — ablations of the algebra's design choices (DESIGN.md calls out
//! equi-join detection, predicate placement, and monoid-parallel
//! reduction):
//!
//! * hash join vs nested loop across sizes and key selectivities —
//!   expected: hash wins once the build side exceeds a few dozen rows;
//! * predicate pushdown on vs off — expected: pushing the city filter
//!   below the unnests skips navigating every non-matching city;
//! * parallel partitioned reduction vs sequential — expected: near-linear
//!   scaling for any monoid on large scans (partials merge in partition
//!   order, so associativity suffices), bounded by the host's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_bench::queries::{employee_client_join, PORTLAND_FLAT_OQL};
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::normalize::normalize;
use monoid_store::travel::{self, TravelScale};

fn bench_join_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_join_strategy");
    group.sample_size(10);
    for hotels in [200usize, 800] {
        for k in [4i64, 64] {
            let scale = TravelScale::with_hotels(hotels);
            let mut db = travel::generate(scale, 7);
            let q = employee_client_join(k);
            let hash = monoid_algebra::plan_comprehension(&q).expect("hash plan");
            let nl = monoid_algebra::plan_with_options(
                &q,
                monoid_algebra::PlanOptions { hash_joins: false, push_predicates: true },
            )
            .expect("nl plan");
            let id = format!("h{hotels}_k{k}");
            group.bench_with_input(BenchmarkId::new("hash", &id), &id, |b, _| {
                b.iter(|| monoid_algebra::execute(&hash, &mut db).expect("hash"));
            });
            group.bench_with_input(BenchmarkId::new("nested_loop", &id), &id, |b, _| {
                b.iter(|| monoid_algebra::execute(&nl, &mut db).expect("nl"));
            });
        }
    }
    group.finish();
}

fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_predicate_pushdown");
    group.sample_size(10);
    for hotels in [400usize, 1600] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let schema = travel::schema();
        let q = monoid_oql::compile(&schema, PORTLAND_FLAT_OQL).expect("compiles");
        let n = normalize(&q);
        let on = monoid_algebra::plan_comprehension(&n).expect("on");
        let off = monoid_algebra::plan_with_options(
            &n,
            monoid_algebra::PlanOptions { hash_joins: true, push_predicates: false },
        )
        .expect("off");
        group.bench_with_input(BenchmarkId::new("pushdown_on", hotels), &hotels, |b, _| {
            b.iter(|| monoid_algebra::execute(&on, &mut db).expect("on"));
        });
        group.bench_with_input(
            BenchmarkId::new("pushdown_off", hotels),
            &hotels,
            |b, _| b.iter(|| monoid_algebra::execute(&off, &mut db).expect("off")),
        );
    }
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_index_vs_scan");
    group.sample_size(10);
    for hotels in [400usize, 1600] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let schema = travel::schema();
        let q = monoid_oql::compile(&schema, PORTLAND_FLAT_OQL).expect("compiles");
        let plan = monoid_algebra::plan_comprehension(&normalize(&q)).expect("plan");
        let mut catalog = monoid_algebra::IndexCatalog::new();
        catalog.build(&db, "Cities", "name").expect("index");
        let (indexed, _) = monoid_algebra::apply_indexes(&plan, &catalog, &db);
        group.bench_with_input(BenchmarkId::new("scan", hotels), &hotels, |b, _| {
            b.iter(|| monoid_algebra::execute(&plan, &mut db).expect("scan"));
        });
        group.bench_with_input(BenchmarkId::new("index", hotels), &hotels, |b, _| {
            b.iter(|| monoid_algebra::execute(&indexed, &mut db).expect("index"));
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_parallel_reduce");
    group.sample_size(10);
    let scale = TravelScale::with_hotels(3200);
    let mut db = travel::generate(scale, 7);
    let q = Expr::comp(
        Monoid::Sum,
        Expr::var("r").proj("bed#").mul(Expr::var("r").proj("bed#")),
        vec![
            Expr::gen("h", Expr::var("Hotels")),
            Expr::gen("r", Expr::var("h").proj("rooms")),
        ],
    );
    let plan = monoid_algebra::plan_comprehension(&q).expect("plan");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| monoid_algebra::execute_parallel(&plan, &mut db, t).expect("parallel"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_strategy, bench_pushdown, bench_index, bench_parallel);
criterion_main!(benches);
