//! B5 — §4.2/§4.3 updates: the calculus update program (give every
//! employee a raise; insert a hotel into a city) against direct heap
//! mutation. Expected shape: both linear in the number of objects; the
//! calculus pays an interpretation constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_bench::queries::{insert_hotel_update, raise_salaries};
use monoid_calculus::symbol::Symbol;
use monoid_calculus::value::{Oid, Value};
use monoid_store::travel::{self, TravelScale};

fn bench_raise(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_raise_salaries");
    group.sample_size(10);
    for hotels in [200usize, 800] {
        let scale = TravelScale::with_hotels(hotels);
        let upd = raise_salaries(1);
        let base = travel::generate(scale, 7);
        let salary = Symbol::new("salary");

        group.bench_with_input(BenchmarkId::new("calculus", hotels), &hotels, |b, _| {
            b.iter(|| {
                let mut db = base.clone();
                db.query(&upd).expect("update");
                db
            });
        });
        group.bench_with_input(BenchmarkId::new("direct", hotels), &hotels, |b, _| {
            b.iter(|| {
                let mut db = base.clone();
                let heap_len = db.heap().len();
                for i in 0..heap_len {
                    let oid = Oid(i as u64);
                    let state = db.state(oid).expect("state").clone();
                    if let Some(Value::Int(s)) = state.field(salary).cloned() {
                        if let Value::Record(fields) = &state {
                            let mut fs = fields.as_ref().clone();
                            for f in &mut fs {
                                if f.0 == salary {
                                    f.1 = Value::Int(s + 1);
                                }
                            }
                            db.heap_mut().set(oid, Value::record(fs)).expect("set");
                        }
                    }
                }
                db
            });
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_insert_hotel");
    group.sample_size(10);
    let base = travel::generate(TravelScale::with_hotels(400), 7);
    let upd = insert_hotel_update("Portland", "hotel_bench");
    group.bench_function("calculus_insert", |b| {
        b.iter(|| {
            let mut db = base.clone();
            db.query(&upd).expect("insert");
            db
        });
    });
    group.finish();
}

criterion_group!(benches, bench_raise, bench_insert);
criterion_main!(benches);
