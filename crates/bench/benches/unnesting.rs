//! B1 — unnesting a correlated exists (DESIGN.md experiment index).
//!
//! The query `set{ cl.name | cl ← Clients, p ← cl.preferred,
//! some{ c.name = p | c ← Cities } }` is measured three ways at each
//! scale: evaluated as written (the existential rescans `Cities` per
//! preference), evaluated after normalization (rule N6 unnests the
//! exists), and executed through the algebra (where the unnested form
//! becomes a hash join). Expected shape: naive is O(clients · cities),
//! pipeline is O(clients + cities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_bench::queries::clients_preferring_existing_city;
use monoid_calculus::normalize::normalize;
use monoid_store::travel::{self, TravelScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_unnesting");
    group.sample_size(10);
    for hotels in [100usize, 400, 1600] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let q = clients_preferring_existing_city();
        let n = normalize(&q);
        let plan = monoid_algebra::plan_comprehension(&n).expect("plans");

        group.bench_with_input(BenchmarkId::new("naive_eval", hotels), &hotels, |b, _| {
            b.iter(|| db.query(&q).expect("naive"));
        });
        group.bench_with_input(
            BenchmarkId::new("normalized_eval", hotels),
            &hotels,
            |b, _| b.iter(|| db.query(&n).expect("normalized")),
        );
        group.bench_with_input(
            BenchmarkId::new("pipeline_hash_join", hotels),
            &hotels,
            |b, _| b.iter(|| monoid_algebra::execute(&plan, &mut db).expect("pipeline")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
