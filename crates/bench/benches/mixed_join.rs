//! B3 — the paper's §2.4 mixed-collection join (list × bag → set), scaled.
//!
//! Expected shape: direct evaluation of the comprehension is a nested
//! loop, O(n²); the planner detects the equality and hash-joins, O(n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_bench::queries::mixed_join;
use monoid_calculus::eval::eval_closed;
use monoid_calculus::types::Schema;
use monoid_store::Database;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_mixed_join");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let q = mixed_join(n, n);
        let plan = monoid_algebra::plan_comprehension(&q).expect("plans");
        let mut db = Database::new(Schema::new());

        group.bench_with_input(BenchmarkId::new("direct_eval", n), &n, |b, _| {
            b.iter(|| eval_closed(&q).expect("direct"));
        });
        group.bench_with_input(BenchmarkId::new("pipeline_hash_join", n), &n, |b, _| {
            b.iter(|| monoid_algebra::execute(&plan, &mut db).expect("pipeline"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
