//! B2 — pipelining: nested-from subqueries vs the canonical pipeline.
//!
//! A three-level navigation written with subqueries in `from` materializes
//! (and canonicalizes) an intermediate bag per level when evaluated
//! directly; the normalized canonical form streams, and the algebra
//! pipeline streams without any interpretation of generators. Expected
//! shape: a constant-factor win growing with chain depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_bench::queries::deep_navigation_nested;
use monoid_calculus::normalize::normalize;
use monoid_store::travel::{self, TravelScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_pipelining");
    group.sample_size(10);
    for hotels in [200usize, 800] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let q = deep_navigation_nested(200);
        let n = normalize(&q);
        let plan = monoid_algebra::plan_comprehension(&n).expect("plans");

        group.bench_with_input(BenchmarkId::new("nested_eval", hotels), &hotels, |b, _| {
            b.iter(|| db.query(&q).expect("nested"));
        });
        group.bench_with_input(
            BenchmarkId::new("canonical_eval", hotels),
            &hotels,
            |b, _| b.iter(|| db.query(&n).expect("canonical")),
        );
        group.bench_with_input(
            BenchmarkId::new("canonical_pipeline", hotels),
            &hotels,
            |b, _| b.iter(|| monoid_algebra::execute(&plan, &mut db).expect("pipeline")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
