//! Normalization cost — the *manipulability* leg of effectiveness.
//!
//! Normalization happens once per query at compile time, so its absolute
//! cost matters little; this bench documents that it is microseconds even
//! for deeply nested inputs, and that its output is stable (idempotent).
//! Sweep dimension: nesting depth of `from`-subqueries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::normalize::normalize;

/// Build a `depth`-level nest: bag{ f(x) | x ← bag{ … | … } }.
fn deep_nest(depth: usize) -> Expr {
    let mut e = Expr::comp(
        Monoid::Bag,
        Expr::var("x0"),
        vec![Expr::gen("x0", Expr::var("Source"))],
    );
    for i in 1..=depth {
        let v = format!("x{i}");
        e = Expr::comp(
            Monoid::Bag,
            Expr::var(v.as_str()).add(Expr::int(1)),
            vec![
                Expr::gen(v.as_str(), e),
                Expr::pred(Expr::var(v.as_str()).gt(Expr::int(0))),
            ],
        );
    }
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalization_cost");
    for depth in [2usize, 8, 32] {
        let e = deep_nest(depth);
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| normalize(&e));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
