//! B4 — §4.1 vectors: the DFT-as-a-query against the native FFT, the
//! histogram comprehension, and the matmul comprehension against native
//! matmul. Expected shape: identical results; the interpreted
//! comprehensions pay a constant factor, and the FFT's asymptotic
//! advantage over the O(n²) DFT query grows with n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monoid_calculus::eval::eval_closed;
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_vector as vector;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_dft_vs_fft");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 / 3.0).sin()).collect();
        let xs: Vec<vector::Complex> = x.iter().map(|&r| (r, 0.0)).collect();
        group.bench_with_input(BenchmarkId::new("dft_query", n), &n, |b, _| {
            b.iter(|| vector::dft_via_query(&x).expect("dft"));
        });
        group.bench_with_input(BenchmarkId::new("native_fft", n), &n, |b, _| {
            b.iter(|| vector::fft(&xs));
        });
        group.bench_with_input(BenchmarkId::new("native_dft", n), &n, |b, _| {
            b.iter(|| vector::dft_reference(&xs));
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_histogram");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let xs = Expr::CollLit(
            Monoid::List,
            (0..n as i64).map(|i| Expr::int(i * 37 % 1000)).collect(),
        );
        let q = vector::histogram_expr(xs, 10, 100);
        group.bench_with_input(BenchmarkId::new("comprehension", n), &n, |b, _| {
            b.iter(|| eval_closed(&q).expect("histogram"));
        });
        let data: Vec<i64> = (0..n as i64).map(|i| i * 37 % 1000).collect();
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                let mut buckets = [0u64; 10];
                for &v in &data {
                    buckets[(v / 100) as usize] += 1;
                }
                buckets
            });
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_matmul");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let a: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| (i * j) as i64 % 7).collect())
            .collect();
        let q = vector::matmul_expr(
            vector::matrix::int_matrix(&a),
            vector::matrix::int_matrix(&a),
            n,
            n,
        );
        group.bench_with_input(BenchmarkId::new("comprehension", n), &n, |b, _| {
            b.iter(|| vector::matrix::eval_int_matrix(&q).expect("matmul"));
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| vector::matmul_reference(&a, &a));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_histogram, bench_matmul);
criterion_main!(benches);
