//! The serving-throughput section of the regression report: an
//! in-process `oqld`-shaped server ([`monoid_db::server::Server`]) over
//! the travel store, driven closed-loop over the real wire protocol by
//! [`monoid_db::server::Client`] connections at several concurrency
//! levels.
//!
//! Per statement the section reports:
//!
//! * `cold_first_query_nanos` — connect + first-ever execution of the
//!   statement (a plan-cache miss: the whole parse → … → plan pipeline
//!   runs server-side), the latency a brand-new client sees;
//! * `warm_nanos_per_query` — single-client median round trip once the
//!   plan cache is hot. This is the **gated** metric
//!   ([`crate::compare`]): one client, no queueing, so it tracks the
//!   serving stack's per-statement overhead rather than the host's core
//!   count;
//! * a `clients` ladder — closed-loop throughput (queries/second) at
//!   {1, 4, 16, 64} concurrent connections, each pinned to its own
//!   per-statement snapshot server-side. Not gated: throughput measures
//!   the machine as much as the code, but its trajectory belongs in the
//!   report.

use crate::harness::percentile_nanos;
use monoid_calculus::json::Json;
use monoid_calculus::value::Value;
use monoid_db::server::{Client, Server};
use monoid_store::{travel, TravelScale};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Client counts the closed-loop ladder runs at.
pub const CLIENT_LADDER: [usize; 4] = [1, 4, 16, 64];

/// One concurrency level of the closed loop.
pub struct ServingPoint {
    pub clients: usize,
    /// Queries completed across all clients.
    pub total_queries: u64,
    /// Wall time of the slowest client (all start together behind a
    /// barrier, so this is the window the whole batch fit in).
    pub wall_nanos: u128,
    pub queries_per_sec: f64,
}

/// One statement's serving numbers.
pub struct ServingBench {
    pub name: &'static str,
    pub source: String,
    pub cold_first_query_nanos: u128,
    /// Single-client warm median round trip — the gated metric.
    pub warm_nanos_per_query: u128,
    pub points: Vec<ServingPoint>,
}

impl ServingBench {
    pub fn to_json(&self) -> Json {
        let clients = Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("clients", Json::from(p.clients)),
                        ("total_queries", Json::from(p.total_queries)),
                        ("wall_nanos", Json::from(p.wall_nanos)),
                        ("queries_per_sec", Json::Float(p.queries_per_sec)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("source", Json::str(self.source.clone())),
            ("cold_first_query_nanos", Json::from(self.cold_first_query_nanos)),
            ("warm_nanos_per_query", Json::from(self.warm_nanos_per_query)),
            ("clients", clients),
        ])
    }
}

type Param = (String, Value);

fn cases() -> Vec<(&'static str, &'static str, Vec<Param>)> {
    vec![
        (
            "serving-exists-point",
            "exists h in Hotels: h.name = $name",
            vec![("name".to_string(), Value::str("hotel_0_0"))],
        ),
        (
            "serving-city-rooms",
            "select r.price from c in Cities, h in c.hotels, r in h.rooms \
             where c.name = $city and r.bed# = $beds",
            vec![
                ("city".to_string(), Value::str("Portland")),
                ("beds".to_string(), Value::Int(2)),
            ],
        ),
    ]
}

/// Run the section: spawn the server on a loopback ephemeral port, time
/// each statement cold and warm, then walk the client ladder. The
/// server is shut down before returning.
pub fn run_serving_section(quick: bool) -> Vec<ServingBench> {
    let scale = if quick { TravelScale::tiny() } else { TravelScale::small() };
    let db = travel::generate(scale, 7);
    let server = Server::bind("127.0.0.1:0", db).expect("serving bench binds loopback");
    let addr = server.addr();
    let handle = server.spawn();
    let warm_runs = if quick { 16 } else { 64 };
    let iters_per_client = if quick { 8 } else { 32 };

    let reports = cases()
        .into_iter()
        .map(|(name, source, params)| {
            // Cold: a fresh connection's first-ever execution of this
            // statement — the server-side plan-cache miss path, over the
            // wire.
            let mut client = Client::connect(addr).expect("serving bench connects");
            let started = Instant::now();
            client.query(source, &params).expect("serving bench statement executes");
            let cold_first_query_nanos = started.elapsed().as_nanos();

            // Warm: the same connection, cache hot, one statement at a
            // time.
            let mut samples = Vec::with_capacity(warm_runs);
            for _ in 0..warm_runs {
                let started = Instant::now();
                client.query(source, &params).expect("serving bench statement executes");
                samples.push(started.elapsed().as_nanos());
            }
            let warm_nanos_per_query = percentile_nanos(&samples, 50.0);

            // The closed loop: N clients, each its own connection and
            // thread, all released together; throughput is the batch
            // over the slowest client's window.
            let points = CLIENT_LADDER
                .iter()
                .map(|&n| run_point(addr, source, &params, n, iters_per_client))
                .collect();
            ServingBench {
                name,
                source: source.to_string(),
                cold_first_query_nanos,
                warm_nanos_per_query,
                points,
            }
        })
        .collect();
    handle.shutdown();
    reports
}

fn run_point(
    addr: SocketAddr,
    source: &str,
    params: &[Param],
    clients: usize,
    iters: usize,
) -> ServingPoint {
    let barrier = Arc::new(Barrier::new(clients));
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let source = source.to_string();
            let params = params.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("serving bench connects");
                // One untimed round trip so every connection is past
                // Hello + cache lookup before the gun goes off.
                client.query(&source, &params).expect("serving bench warms up");
                barrier.wait();
                let started = Instant::now();
                for _ in 0..iters {
                    client.query(&source, &params).expect("serving bench statement executes");
                }
                started.elapsed().as_nanos()
            })
        })
        .collect();
    let wall_nanos = workers
        .into_iter()
        .map(|w| w.join().expect("serving bench client thread completes"))
        .max()
        .unwrap_or(1);
    let total_queries = (clients * iters) as u64;
    ServingPoint {
        clients,
        total_queries,
        wall_nanos,
        queries_per_sec: total_queries as f64 / (wall_nanos.max(1) as f64 / 1e9),
    }
}
