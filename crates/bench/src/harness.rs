//! Minimal timing and table-rendering utilities for the `experiments`
//! binary (Criterion handles the statistically careful runs; this harness
//! prints the paper-style tables quickly), plus the fenced-JSON emitter
//! the profiled experiments use for machine-readable per-operator
//! breakdowns.

use std::time::Instant;

/// Wall-time samples of `runs` executions of `f`, in nanoseconds.
pub fn sample_nanos<T>(runs: usize, mut f: impl FnMut() -> T) -> Vec<u128> {
    assert!(runs > 0);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        let out = f();
        samples.push(start.elapsed().as_nanos());
        drop(out);
    }
    samples
}

/// The `p`-th percentile (`0.0 ≤ p ≤ 100.0`) of a sample vec, by the
/// nearest-rank method (`p = 50` is the median for odd-length inputs;
/// `p = 100` is the max). Panics on an empty slice, like `median_nanos`
/// does on `runs = 0`.
pub fn percentile_nanos(samples: &[u128], p: f64) -> u128 {
    assert!(!samples.is_empty(), "percentile of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Median wall-time of `runs` executions of `f`, in nanoseconds.
pub fn median_nanos<T>(runs: usize, f: impl FnMut() -> T) -> u128 {
    let samples = sample_nanos(runs, f);
    // Keep the historical convention (upper median for even lengths).
    let mut sorted = samples;
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Median and p95 of `runs` executions of `f`, rendered as
/// `"<median> (p95 <p95>)"` — the cell format the experiment tables use
/// now that the harness reports distribution, not just center.
pub fn med_p95_cell<T>(runs: usize, f: impl FnMut() -> T) -> String {
    let samples = sample_nanos(runs, f);
    format!(
        "{} (p95 {})",
        fmt_nanos(percentile_nanos(&samples, 50.0)),
        fmt_nanos(percentile_nanos(&samples, 95.0)),
    )
}

/// Render nanoseconds human-readably.
pub fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Render a named, fenced JSON block. Experiment output is a markdown
/// document (EXPERIMENTS.md), so profiles ride along as ```json fences
/// tagged with a stable `BENCH <name>` marker that scrapers can grep for.
pub fn json_block(name: &str, json: &monoid_calculus::json::Json) -> String {
    format!("<!-- BENCH {name} -->\n```json\n{}\n```\n", json.render_pretty())
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["a".to_string(), "100".to_string()]);
        t.row(&["longer".to_string(), "2".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(12), "12 ns");
        assert_eq!(fmt_nanos(1_500), "1.50 µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50 ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00 s");
    }

    #[test]
    fn median_is_stable() {
        let m = median_nanos(5, || 1 + 1);
        assert!(m < 1_000_000);
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let samples: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile_nanos(&samples, 50.0), 50);
        assert_eq!(percentile_nanos(&samples, 95.0), 95);
        assert_eq!(percentile_nanos(&samples, 99.0), 99);
        assert_eq!(percentile_nanos(&samples, 100.0), 100);
        assert_eq!(percentile_nanos(&samples, 0.0), 1);
        // Unsorted input is handled (the helper sorts a copy).
        assert_eq!(percentile_nanos(&[30, 10, 20], 50.0), 20);
        assert_eq!(percentile_nanos(&[7], 95.0), 7);
    }

    #[test]
    fn med_p95_cell_renders_both() {
        let cell = med_p95_cell(5, || 1 + 1);
        assert!(cell.contains("(p95 "), "{cell}");
    }

    #[test]
    fn json_block_is_fenced_and_tagged() {
        use monoid_calculus::json::Json;
        let j = Json::obj(vec![("rows", Json::Int(3))]);
        let s = json_block("profile-portland", &j);
        assert!(s.starts_with("<!-- BENCH profile-portland -->\n```json\n"), "{s}");
        assert!(s.ends_with("```\n"), "{s}");
        assert!(s.contains("\"rows\": 3"), "{s}");
    }
}
