//! # monoid-bench
//!
//! Workloads, query builders, and a light harness shared by:
//!
//! * the `experiments` binary (`cargo run -p monoid-bench --bin
//!   experiments`), which regenerates every table, worked example, and
//!   derivation in the paper plus quick versions of the benchmark series
//!   (E1–E6, B1–B6 in DESIGN.md / EXPERIMENTS.md);
//! * the Criterion benches (`cargo bench -p monoid-bench`), one target per
//!   benchmark series;
//! * the `regress` binary (`cargo run --release -p monoid-bench --bin
//!   regress`), which runs the canonical paper queries through the
//!   metered pipeline and writes `BENCH_regress.json` — latency
//!   percentiles plus the metrics-registry delta — at the repo root,
//!   and with `--compare` gates a fresh run against that baseline
//!   ([`compare`]);
//! * the `oqltop` binary, which renders top queries by time from the
//!   flight recorder's live snapshot or a dumped journal ([`top`]).

pub mod audit;
pub mod compare;
pub mod harness;
pub mod queries;
pub mod regress;
pub mod serving;
pub mod top;
