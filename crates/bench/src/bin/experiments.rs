//! The experiment harness: regenerates every table, worked example, and
//! derivation of Fegaras & Maier (SIGMOD 1995), plus quick versions of the
//! benchmark series. `cargo run --release -p monoid-bench --bin
//! experiments [-- <experiment>]` where `<experiment>` is one of
//! `table1 examples table3 oql vectors identity profile bench-unnesting
//! bench-pipelining bench-mixed bench-vectors bench-updates bench-ablation`
//! (default: all). Output is the content of EXPERIMENTS.md; the `profile`
//! experiment additionally emits machine-readable `QueryProfile` JSON
//! blocks (per-operator row counts and per-phase timings).

use monoid_bench::harness::{fmt_nanos, med_p95_cell, percentile_nanos, sample_nanos, Table};
use monoid_bench::queries;
use monoid_calculus::eval::eval_closed;
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::normalize::{normalize, normalize_traced, Rule};
use monoid_calculus::pretty::pretty;
use monoid_calculus::value::Value;
use monoid_oql::compile;
use monoid_store::travel::{self, TravelScale};
use monoid_vector as vector;
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    if want("table1") {
        table1();
    }
    if want("examples") {
        examples();
    }
    if want("table3") {
        table3();
    }
    if want("oql") {
        oql_coverage();
    }
    if want("vectors") {
        vectors();
    }
    if want("identity") {
        identity();
    }
    if want("profile") {
        profile();
    }
    if want("bench-unnesting") {
        bench_unnesting();
    }
    if want("bench-pipelining") {
        bench_pipelining();
    }
    if want("bench-mixed") {
        bench_mixed();
    }
    if want("bench-vectors") {
        bench_vectors();
    }
    if want("bench-updates") {
        bench_updates();
    }
    if want("bench-ablation") {
        bench_ablation();
    }
}

fn heading(s: &str) {
    println!("\n## {s}\n");
}

// ---------------------------------------------------------------------------
// E1 — Table 1: the monoids and their laws.
// ---------------------------------------------------------------------------

fn table1() {
    heading("E1 — Table 1: monoids (paper §2.1–§2.2)");
    let mut t = Table::new(&["monoid", "type", "zero", "unit(a)", "merge", "C/I", "laws"]);
    let rows: Vec<(Monoid, &str, &str, &str, &str)> = vec![
        (Monoid::List, "list(α)", "[]", "[a]", "++"),
        (Monoid::Set, "set(α)", "{}", "{a}", "∪"),
        (Monoid::Bag, "bag(α)", "{{}}", "{{a}}", "⊎"),
        (Monoid::OSet, "list(α)", "[]", "[a]", "∪̇ (dedup append)"),
        (Monoid::Str, "string", "\"\"", "\"a\"", "concat"),
        (Monoid::Sorted, "list(α)", "[]", "[a]", "order-merge"),
        (Monoid::SortedBag, "list(α)", "[]", "[a]", "order-merge (dup)"),
        (Monoid::Sum, "number", "0", "a", "+"),
        (Monoid::Prod, "number", "1", "a", "×"),
        (Monoid::Max, "number", "−∞", "a", "max"),
        (Monoid::Min, "number", "+∞", "a", "min"),
        (Monoid::Some, "bool", "false", "a", "∨"),
        (Monoid::All, "bool", "true", "a", "∧"),
    ];
    for (m, ty, zero, unit, merge) in rows {
        let laws = check_laws(&m);
        t.row(&[
            m.to_string(),
            ty.to_string(),
            zero.to_string(),
            unit.to_string(),
            merge.to_string(),
            m.props().to_string(),
            laws,
        ]);
    }
    print!("{}", t.render());
    println!("\nLegality (paper §2.3, props(M) ⊆ props(N)):");
    for (from, to) in [
        (Monoid::Bag, Monoid::Sum),
        (Monoid::Set, Monoid::Sum),
        (Monoid::Set, Monoid::List),
        (Monoid::Set, Monoid::Sorted),
        (Monoid::List, Monoid::Set),
    ] {
        println!(
            "  hom[{from} → {to}] : {}",
            if from.hom_legal_to(&to) { "legal" } else { "ILLEGAL" }
        );
    }
}

/// Spot-check the declared laws on concrete values.
fn check_laws(m: &Monoid) -> String {
    use monoid_calculus::value::{merge, unit, zero};
    let samples: Vec<Value> = match m {
        Monoid::Str => vec![Value::str("ab"), Value::str("c"), Value::str("")],
        Monoid::Some | Monoid::All => vec![Value::Bool(true), Value::Bool(false)],
        _ => vec![Value::Int(2), Value::Int(5), Value::Int(2)],
    };
    let lift = |v: &Value| unit(m, v.clone()).expect("unit");
    let vals: Vec<Value> = samples.iter().map(lift).collect();
    let z = zero(m).expect("zero");
    let mut ok = true;
    // identity + associativity + declared C/I
    for a in &vals {
        ok &= merge(m, &z, a).unwrap() == *a && merge(m, a, &z).unwrap() == *a;
        for b in &vals {
            if m.props().commutative {
                ok &= merge(m, a, b).unwrap() == merge(m, b, a).unwrap();
            }
            for c in &vals {
                let l = merge(m, &merge(m, a, b).unwrap(), c).unwrap();
                let r = merge(m, a, &merge(m, b, c).unwrap()).unwrap();
                ok &= l == r;
            }
        }
        if m.props().idempotent {
            ok &= merge(m, a, a).unwrap() == *a;
        }
    }
    if ok { "✓".into() } else { "VIOLATED".into() }
}

// ---------------------------------------------------------------------------
// E2 — the paper's §2 worked examples.
// ---------------------------------------------------------------------------

fn examples() {
    heading("E2 — §2 worked examples");
    let cases: Vec<(Expr, &str)> = vec![
        (
            Expr::comp(
                Monoid::Set,
                Expr::Tuple(vec![Expr::var("a"), Expr::var("b")]),
                vec![
                    Expr::gen(
                        "a",
                        Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)]),
                    ),
                    Expr::gen("b", Expr::bag_of(vec![Expr::int(4), Expr::int(5)])),
                ],
            ),
            "paper: {(1,4),(1,5),(2,4),(2,5),(3,4),(3,5)}",
        ),
        (
            Expr::comp(
                Monoid::Sum,
                Expr::var("a"),
                vec![
                    Expr::gen(
                        "a",
                        Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)]),
                    ),
                    Expr::pred(Expr::var("a").le(Expr::int(2))),
                ],
            ),
            "paper: 3",
        ),
        (
            Expr::comp(
                Monoid::Set,
                Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]),
                vec![
                    Expr::gen("x", Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
                    Expr::gen(
                        "y",
                        Expr::bag_of(vec![Expr::int(3), Expr::int(4), Expr::int(3)]),
                    ),
                ],
            ),
            "paper: {(1,3),(1,4),(2,3),(2,4)}",
        ),
        (
            Expr::merge(
                Monoid::OSet,
                Expr::list_of(vec![Expr::int(2), Expr::int(5), Expr::int(3), Expr::int(1)]),
                Expr::list_of(vec![Expr::int(3), Expr::int(2), Expr::int(6)]),
            ),
            "paper: [2,5,3,1,6]",
        ),
        (
            Expr::hom(
                Monoid::Sum,
                "x",
                Expr::int(1),
                Expr::bag_of(vec![Expr::int(7), Expr::int(7), Expr::int(9)]),
            ),
            "bag cardinality (paper: legal) = 3",
        ),
    ];
    let mut t = Table::new(&["expression", "result", "expected"]);
    for (e, expected) in cases {
        let v = eval_closed(&e).expect("example evaluates");
        t.row(&[pretty(&e), v.to_string(), expected.to_string()]);
    }
    print!("{}", t.render());
    // The illegal one, rejected.
    let bad = Expr::comp(
        Monoid::Sum,
        Expr::int(1),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1)]))],
    );
    println!(
        "\nset cardinality hom[set→sum] (paper: ill-formed): {}",
        monoid_calculus::typecheck::infer(&bad).unwrap_err()
    );
}

// ---------------------------------------------------------------------------
// E3 — Table 3 + the §3.1 derivation.
// ---------------------------------------------------------------------------

fn table3() {
    heading("E3 — Table 3: normalization rules and the §3.1 derivation");
    let mut t = Table::new(&["rule", "name"]);
    for r in Rule::all() {
        t.row(&[format!("N{}", r.number()), r.name().to_string()]);
    }
    print!("{}", t.render());

    println!("\nPortland derivation (paper §3.1, \"by rules 4 and 5\"):\n");
    let db_schema = travel::schema();
    let q = compile(&db_schema, queries::PORTLAND_NESTED_OQL).expect("compiles");
    println!("  OQL (nested): {}", queries::PORTLAND_NESTED_OQL.replace('\n', " "));
    println!("  calculus:     {}", pretty(&q));
    let (n, trace, stats) = normalize_traced(&q);
    for step in &trace {
        println!("  ⇒ [{}] {}", step.rule, step.after);
    }
    println!("  canonical:    {}", pretty(&n));
    println!(
        "  ({} steps, size {} → {})",
        stats.steps, stats.size_before, stats.size_after
    );

    // And its plan.
    let plan = monoid_algebra::plan_comprehension(&n).expect("plans");
    println!("\nPipelined plan of the canonical form:\n{}", monoid_algebra::explain(&plan));
}

// ---------------------------------------------------------------------------
// E4 — OQL coverage (§3 / Table 2).
// ---------------------------------------------------------------------------

fn oql_coverage() {
    heading("E4 — OQL → calculus coverage (§3, Table 2)");
    let schema = travel::schema();
    let cases = [
        "select c.name from c in Cities",
        "select distinct r.bed# from h in Hotels, r in h.rooms",
        "count(Cities)",
        "max(select e.salary from e in Employees)",
        "avg(select e.salary from e in Employees)",
        "exists r in element(select h from h in Hotels where h.name = 'hotel_0_0').rooms: r.bed# = 3",
        "for all e in Employees: e.salary > 0",
        "'pool' in element(select h from h in Hotels where h.name = 'hotel_0_0').facilities",
        "select c.name from c in Cities order by c.name",
        "select struct(beds: b, n: count(partition)) from h in Hotels, r in h.rooms group by b: r.bed#",
        "set(1,2) union set(2,3)",
        "flatten(select h.facilities from h in Hotels)",
        "select c.name from c in Cities where c.name like 'Port%'",
    ];
    for src in cases {
        match compile(&schema, src) {
            Ok(e) => {
                println!("OQL:      {src}");
                println!("calculus: {}", pretty(&e));
                println!("normal:   {}\n", pretty(&normalize(&e)));
            }
            Err(err) => println!("OQL:      {src}\n  ERROR: {err}\n"),
        }
    }
}

// ---------------------------------------------------------------------------
// E5 — §4.1 vectors.
// ---------------------------------------------------------------------------

fn vectors() {
    heading("E5 — §4.1: vectors and arrays");
    // The paper's unit/merge example for sum[4].
    let m = Monoid::VecOf(Box::new(Monoid::Sum));
    let a = Value::vector(vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(0)]);
    let b = Value::vector(vec![Value::Int(3), Value::Int(0), Value::Int(2), Value::Int(1)]);
    println!(
        "merge sum[4] (|0,1,2,0|) (|3,0,2,1|) = {}   (paper: (|3,1,4,1|))",
        monoid_calculus::value::merge(&m, &a, &b).unwrap()
    );
    println!(
        "unit sum[4] (8, 2) = {}   (paper: (|0,0,8,0|))",
        monoid_calculus::value::unit_vector(&Monoid::Sum, 4, Value::Int(8), 2).unwrap()
    );

    // Reverse, the paper's example.
    let rev = vector::reverse_expr(vector::ops::int_vec(&[1, 2, 3, 4]), 4);
    println!("\nreverse: {}", pretty(&rev));
    println!("       = {}", eval_closed(&rev).unwrap());

    // Histogram.
    let hist = vector::histogram_expr(
        Expr::CollLit(Monoid::List, (0..20).map(|i| Expr::int(i * i % 40)).collect()),
        4,
        10,
    );
    println!("\nhistogram: {}", pretty(&hist));
    println!("         = {}", eval_closed(&hist).unwrap());

    // DFT as a query vs FFT.
    let x = [1.0, 2.0, 3.0, 4.0, 0.0, -1.0, 0.5, 2.5];
    let via_query = vector::dft_via_query(&x).unwrap();
    let xs: Vec<vector::Complex> = x.iter().map(|&r| (r, 0.0)).collect();
    let via_fft = vector::fft(&xs);
    println!(
        "\nDFT-as-a-query vs native FFT on {} points: max |Δ| = {:.2e}",
        x.len(),
        vector::fft::max_error(&via_query, &via_fft)
    );

    // Matrix multiply as a comprehension.
    let a = vec![vec![1, 2], vec![3, 4]];
    let b = vec![vec![5, 6], vec![7, 8]];
    let mm = vector::matmul_expr(
        vector::matrix::int_matrix(&a),
        vector::matrix::int_matrix(&b),
        2,
        2,
    );
    println!(
        "\nmatmul [[1,2],[3,4]]·[[5,6],[7,8]] = {:?}   (reference {:?})",
        vector::matrix::eval_int_matrix(&mm).unwrap(),
        vector::matmul_reference(&a, &b)
    );
}

// ---------------------------------------------------------------------------
// E6 — §4.2 identity & updates.
// ---------------------------------------------------------------------------

fn identity() {
    heading("E6 — §4.2: object identity and updates");
    let cases: Vec<(Expr, &str)> = vec![
        (
            Expr::comp(
                Monoid::Some,
                Expr::var("x").deref().eq(Expr::var("y").deref()),
                vec![
                    Expr::gen("x", Expr::new_obj(Expr::int(1))),
                    Expr::gen("y", Expr::new_obj(Expr::int(1))),
                ],
            ),
            "paper: true (equal states, distinct identities)",
        ),
        (
            Expr::comp(
                Monoid::Some,
                Expr::var("x").eq(Expr::var("y")),
                vec![
                    Expr::gen("x", Expr::new_obj(Expr::int(1))),
                    Expr::bind("y", Expr::var("x")),
                    Expr::pred(Expr::var("y").assign(Expr::int(2))),
                ],
            ),
            "paper: true (aliases)",
        ),
        (
            Expr::comp(
                Monoid::Sum,
                Expr::var("x").deref(),
                vec![
                    Expr::gen("x", Expr::new_obj(Expr::int(1))),
                    Expr::bind("y", Expr::var("x")),
                    Expr::pred(Expr::var("y").assign(Expr::int(2))),
                ],
            ),
            "paper: 2 (update through alias)",
        ),
        (
            Expr::comp(
                Monoid::Set,
                Expr::var("e"),
                vec![
                    Expr::gen("x", Expr::new_obj(Expr::list_of(vec![]))),
                    Expr::pred(Expr::var("x").assign(Expr::list_of(vec![
                        Expr::int(1),
                        Expr::int(2),
                    ]))),
                    Expr::gen("e", Expr::var("x").deref()),
                ],
            ),
            "paper: {1, 2}",
        ),
        (
            Expr::comp(
                Monoid::List,
                Expr::var("x").deref(),
                vec![
                    Expr::gen("x", Expr::new_obj(Expr::int(0))),
                    Expr::gen(
                        "e",
                        Expr::list_of(vec![
                            Expr::int(1),
                            Expr::int(2),
                            Expr::int(3),
                            Expr::int(4),
                        ]),
                    ),
                    Expr::pred(
                        Expr::var("x").assign(Expr::var("x").deref().add(Expr::var("e"))),
                    ),
                ],
            ),
            "paper: [1, 3, 6, 10]",
        ),
    ];
    let mut t = Table::new(&["expression", "result", "expected"]);
    for (e, expected) in cases {
        let v = eval_closed(&e).expect("identity example evaluates");
        t.row(&[pretty(&e), v.to_string(), expected.to_string()]);
    }
    print!("{}", t.render());

    // §4.3: the update program.
    println!("\n§4.3 update program (insert a hotel into Portland):");
    let mut db = travel::generate(TravelScale::tiny(), 42);
    let count_q = compile(
        db.schema(),
        "count(element(select c from c in Cities where c.name = 'Portland').hotels)",
    )
    .unwrap();
    let before = db.query(&count_q).unwrap();
    let upd = queries::insert_hotel_update("Portland", "hotel_new");
    println!("  {}", pretty(&upd));
    db.query(&upd).unwrap();
    let after = db.query(&count_q).unwrap();
    println!("  hotels in Portland: {before} → {after}");
}

// ---------------------------------------------------------------------------
// E7 — EXPLAIN ANALYZE: profiled end-to-end runs with JSON output.
// ---------------------------------------------------------------------------

fn profile() {
    heading("E7 — EXPLAIN ANALYZE: lifecycle timings and per-operator rows");
    let schema = travel::schema();
    let mut db = travel::generate(TravelScale::small(), 7);
    let cases = [
        ("portland-flat", queries::PORTLAND_FLAT_OQL),
        (
            "employee-city-join",
            "select struct(e: e.name, c: c.name) \
             from e in Employees, c in Cities \
             where e.salary > c.hotel#",
        ),
        ("exists-hotel", "exists h in Hotels: h.name = 'hotel_0_0'"),
    ];
    for (name, src) in cases {
        // Front-end phases are timed here; the algebra back end continues
        // the same trace through normalize/optimize/plan/execute.
        let mut trace = monoid_calculus::trace::QueryTrace::new();
        trace.source = Some(src.to_string());
        let program = trace
            .time(monoid_calculus::trace::Phase::Parse, || {
                monoid_oql::parse_program(src)
            })
            .expect("parses");
        let q = trace
            .time(monoid_calculus::trace::Phase::Translate, || {
                monoid_oql::Translator::new(&schema).translate_program(&program)
            })
            .expect("translates");
        let analysis = monoid_algebra::analyze_with_trace(&q, &mut db, trace).expect("executes");
        println!("query `{name}`: {}", src.replace('\n', " "));
        // The profile, not the answer, is the point here — elide big results.
        let mut result = analysis.value.to_string();
        if result.chars().count() > 120 {
            result = format!(
                "{}… ({} chars elided)",
                result.chars().take(120).collect::<String>(),
                result.chars().count() - 120
            );
        }
        println!("result: {result}\n");
        print!("{}", analysis.profile.render());
        println!("\n{}", monoid_bench::harness::json_block(&format!("profile-{name}"), &analysis.profile.to_json()));
    }
}

/// Three timed runs of `f`, keeping center and spread: `cell()` renders
/// the table entry as `median (p95 …)`; speedup ratios compare medians.
struct Timing {
    median: u128,
    p95: u128,
}

fn timed<T>(f: impl FnMut() -> T) -> Timing {
    let samples = sample_nanos(3, f);
    Timing {
        median: percentile_nanos(&samples, 50.0),
        p95: percentile_nanos(&samples, 95.0),
    }
}

impl Timing {
    fn cell(&self) -> String {
        format!("{} (p95 {})", fmt_nanos(self.median), fmt_nanos(self.p95))
    }

    /// `self` is the slower side: how many times faster is `faster`?
    fn speedup(&self, faster: &Timing) -> String {
        format!("{:.1}×", self.median as f64 / faster.median as f64)
    }
}

// ---------------------------------------------------------------------------
// B1 — unnesting: naive vs normalized vs normalized+algebra.
// ---------------------------------------------------------------------------

fn bench_unnesting() {
    heading("B1 — unnesting a correlated exists (naive vs normalized vs pipeline)");
    println!("query: {}\n", pretty(&queries::clients_preferring_existing_city()));
    let mut t = Table::new(&[
        "hotels", "clients", "cities", "naive eval", "normalized eval", "pipeline (hash join)",
        "speedup",
    ]);
    for hotels in [100usize, 400, 1600, 6400] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let q = queries::clients_preferring_existing_city();
        let n = normalize(&q);
        let plan = monoid_algebra::plan_comprehension(&n).unwrap();
        let naive = timed(|| db.query(&q).unwrap());
        let flat = timed(|| db.query(&n).unwrap());
        let piped = timed(|| monoid_algebra::execute(&plan, &mut db).unwrap());
        t.row(&[
            scale.total_hotels().to_string(),
            scale.clients.to_string(),
            scale.cities.to_string(),
            naive.cell(),
            flat.cell(),
            piped.cell(),
            naive.speedup(&piped),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: naive grows ~quadratically (rescans Cities per \
         preference); the normalized+hash-join pipeline grows ~linearly."
    );
}

// ---------------------------------------------------------------------------
// B2 — pipelining vs materializing nested subqueries.
// ---------------------------------------------------------------------------

fn bench_pipelining() {
    heading("B2 — pipelining: nested-from subqueries vs canonical pipeline");
    let mut t = Table::new(&[
        "hotels", "nested eval (materializes)", "canonical eval", "canonical pipeline", "speedup",
    ]);
    for hotels in [200usize, 800, 3200] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let q = queries::deep_navigation_nested(200);
        let n = normalize(&q);
        let plan = monoid_algebra::plan_comprehension(&n).unwrap();
        let nested = timed(|| db.query(&q).unwrap());
        let flat = timed(|| db.query(&n).unwrap());
        let piped = timed(|| monoid_algebra::execute(&plan, &mut db).unwrap());
        t.row(&[
            scale.total_hotels().to_string(),
            nested.cell(),
            flat.cell(),
            piped.cell(),
            nested.speedup(&piped),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: constant-factor win for the canonical forms — \
         the nested form materializes (and canonicalizes) two intermediate \
         bags per run."
    );
}

// ---------------------------------------------------------------------------
// B3 — the mixed-collection join.
// ---------------------------------------------------------------------------

fn bench_mixed() {
    heading("B3 — mixed-collection join (list × bag → set)");
    let mut t = Table::new(&["n", "direct eval", "pipeline (hash join)", "speedup"]);
    for n in [200usize, 800, 3200] {
        let q = queries::mixed_join(n, n);
        let plan = monoid_algebra::plan_comprehension(&q).unwrap();
        let mut db = monoid_store::Database::new(monoid_calculus::types::Schema::new());
        let direct = timed(|| eval_closed(&q).unwrap());
        let piped = timed(|| monoid_algebra::execute(&plan, &mut db).unwrap());
        t.row(&[n.to_string(), direct.cell(), piped.cell(), direct.speedup(&piped)]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: the nested-loop direct evaluation is O(n²); the \
         hash join is O(n) — the gap widens with n."
    );
}

// ---------------------------------------------------------------------------
// B4 — vectors: DFT query vs FFT; matmul comprehension vs native.
// ---------------------------------------------------------------------------

fn bench_vectors() {
    heading("B4 — §4.1 vectors: DFT-as-a-query vs native FFT");
    let mut t = Table::new(&["n", "DFT query (O(n²))", "native FFT (O(n log n))", "max |Δ|"]);
    for n in [16usize, 64, 256] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 / 3.0).sin()).collect();
        let xs: Vec<vector::Complex> = x.iter().map(|&r| (r, 0.0)).collect();
        let dq = med_p95_cell(3, || vector::dft_via_query(&x).unwrap());
        let df = med_p95_cell(3, || vector::fft(&xs));
        let err = vector::fft::max_error(&vector::dft_via_query(&x).unwrap(), &vector::fft(&xs));
        t.row(&[n.to_string(), dq, df, format!("{err:.2e}")]);
    }
    print!("{}", t.render());

    println!();
    let mut t = Table::new(&["n×n", "matmul comprehension", "native matmul", "agree"]);
    for n in [4usize, 8, 16] {
        let a: Vec<Vec<i64>> = (0..n).map(|i| (0..n).map(|j| (i * j) as i64 % 7).collect()).collect();
        let e = vector::matmul_expr(
            vector::matrix::int_matrix(&a),
            vector::matrix::int_matrix(&a),
            n,
            n,
        );
        let tc = med_p95_cell(3, || vector::matrix::eval_int_matrix(&e).unwrap());
        let tn = med_p95_cell(3, || vector::matmul_reference(&a, &a));
        let agree = vector::matrix::eval_int_matrix(&e).unwrap() == vector::matmul_reference(&a, &a);
        t.row(&[format!("{n}×{n}"), tc, tn, agree.to_string()]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: identical results; the interpreted comprehension \
         pays a large constant factor, and the FFT's asymptotic win over \
         the DFT query grows with n."
    );
}

// ---------------------------------------------------------------------------
// B5 — updates through the calculus vs direct mutation.
// ---------------------------------------------------------------------------

fn bench_updates() {
    heading("B5 — §4.2/§4.3 updates: calculus update program vs direct heap mutation");
    let mut t = Table::new(&["employees", "calculus raise", "direct raise", "overhead"]);
    for hotels in [200usize, 800, 3200] {
        let scale = TravelScale::with_hotels(hotels);
        let employees = scale.total_hotels() * scale.employees_per_hotel;
        let upd = queries::raise_salaries(1);
        let calc = {
            let mut db = travel::generate(scale, 7);
            timed(|| db.query(&upd).unwrap())
        };
        let direct = {
            let db = travel::generate(scale, 7);
            let heap_len = db.heap().len();
            timed(|| {
                let mut db2 = db.clone();
                let name = monoid_calculus::symbol::Symbol::new("salary");
                for i in 0..heap_len {
                    let oid = monoid_calculus::value::Oid(i as u64);
                    let state = db2.state(oid).unwrap().clone();
                    if let Some(Value::Int(s)) = state.field(name).cloned() {
                        if let Value::Record(fields) = &state {
                            let mut fs = fields.as_ref().clone();
                            for f in &mut fs {
                                if f.0 == name {
                                    f.1 = Value::Int(s + 1);
                                }
                            }
                            db2.heap_mut().set(oid, Value::record(fs)).unwrap();
                        }
                    }
                }
                db2
            })
        };
        t.row(&[employees.to_string(), calc.cell(), direct.cell(), calc.speedup(&direct)]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: both linear in the number of objects; the \
         calculus pays an interpretation constant."
    );
}

// ---------------------------------------------------------------------------
// B6 — ablation: hash join vs nested loop; predicate pushdown.
// ---------------------------------------------------------------------------

fn bench_ablation() {
    heading("B6 — ablation: join strategy and predicate placement");
    let mut t = Table::new(&["hotels", "k (selectivity)", "nested loop", "hash join", "speedup"]);
    for hotels in [200usize, 800] {
        for k in [4i64, 64] {
            let scale = TravelScale::with_hotels(hotels);
            let mut db = travel::generate(scale, 7);
            let q = queries::employee_client_join(k);
            let hash = monoid_algebra::plan_comprehension(&q).unwrap();
            let nl = monoid_algebra::plan_with_options(
                &q,
                monoid_algebra::PlanOptions { hash_joins: false, push_predicates: true },
            )
            .unwrap();
            let th = timed(|| monoid_algebra::execute(&hash, &mut db).unwrap());
            let tn = timed(|| monoid_algebra::execute(&nl, &mut db).unwrap());
            t.row(&[
                scale.total_hotels().to_string(),
                k.to_string(),
                tn.cell(),
                th.cell(),
                tn.speedup(&th),
            ]);
        }
    }
    print!("{}", t.render());

    println!();
    let mut t = Table::new(&["hotels", "pushdown off", "pushdown on", "speedup"]);
    for hotels in [400usize, 1600] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let schema = travel::schema();
        let q = compile(&schema, queries::PORTLAND_FLAT_OQL).unwrap();
        let n = normalize(&q);
        let on = monoid_algebra::plan_comprehension(&n).unwrap();
        let off = monoid_algebra::plan_with_options(
            &n,
            monoid_algebra::PlanOptions { hash_joins: true, push_predicates: false },
        )
        .unwrap();
        let t_on = timed(|| monoid_algebra::execute(&on, &mut db).unwrap());
        let t_off = timed(|| monoid_algebra::execute(&off, &mut db).unwrap());
        t.row(&[
            scale.total_hotels().to_string(),
            t_off.cell(),
            t_on.cell(),
            t_off.speedup(&t_on),
        ]);
    }
    print!("{}", t.render());

    println!();
    let mut t = Table::new(&["hotels", "filtered scan", "index lookup", "speedup"]);
    for hotels in [400usize, 1600, 6400] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let schema = travel::schema();
        let q = compile(&schema, queries::PORTLAND_FLAT_OQL).unwrap();
        let n = normalize(&q);
        let plan = monoid_algebra::plan_comprehension(&n).unwrap();
        let mut catalog = monoid_algebra::IndexCatalog::new();
        catalog.build(&db, "Cities", "name").unwrap();
        let (indexed, hits) = monoid_algebra::apply_indexes(&plan, &catalog, &db);
        assert_eq!(hits, 1);
        let t_scan = timed(|| monoid_algebra::execute(&plan, &mut db).unwrap());
        let t_index = timed(|| monoid_algebra::execute(&indexed, &mut db).unwrap());
        t.row(&[
            scale.total_hotels().to_string(),
            t_scan.cell(),
            t_index.cell(),
            t_scan.speedup(&t_index),
        ]);
    }
    print!("{}", t.render());

    println!();
    let mut t = Table::new(&["hotels", "written order", "cost-based order", "speedup"]);
    for hotels in [400usize, 1600] {
        let scale = TravelScale::with_hotels(hotels);
        let mut db = travel::generate(scale, 7);
        let stats = monoid_algebra::Stats::gather(&db);
        // A deliberately bad written order: big extent first, selective
        // small extent last.
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("e", Expr::var("Employees")),
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::pred(
                    Expr::var("e").proj("salary").gt(Expr::var("c").proj("hotel#")),
                ),
            ],
        );
        let written = monoid_algebra::plan_comprehension(&q).unwrap();
        let reordered = monoid_algebra::reorder_generators(&q, &stats);
        let optimized = monoid_algebra::plan_comprehension(&reordered).unwrap();
        let tw = timed(|| monoid_algebra::execute(&written, &mut db).unwrap());
        let to = timed(|| monoid_algebra::execute(&optimized, &mut db).unwrap());
        assert_eq!(
            monoid_algebra::execute(&written, &mut db).unwrap(),
            monoid_algebra::execute(&optimized, &mut db).unwrap()
        );
        t.row(&[scale.total_hotels().to_string(), tw.cell(), to.cell(), tw.speedup(&to)]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: the hash join wins once the build side has more \
         than a handful of rows, more at selective keys; pushing the \
         city-name filter below the unnests avoids navigating every city's \
         hotels; the index lookup removes the residual extent scan entirely \
         (its advantage grows with the number of cities); cost-based \
         reordering scans the selective small extent first."
    );
}
