//! `oqlint` — static diagnostics for OQL queries, no execution.
//!
//! Compiles each input against the paper's travel-agency schema (or the
//! company schema with `--schema company`), runs effect inference and the
//! MC001–MC006 lint pass, and prints one line per finding with the source
//! position where the front end recorded one.
//!
//! ```text
//! oqlint [--schema travel|company] [--deny-warnings] [--deny CODE] [--json] [FILE...]
//! ```
//!
//! With no files, reads one query from stdin. Exit status: 0 clean (or
//! info-only), 1 on error-level diagnostics or compile failures, with
//! `--deny-warnings` also on warnings, and with `--deny MC00N` (repeatable)
//! on any diagnostic carrying a denied code regardless of its severity —
//! that is how CI gates a corpus on specific lints without promoting every
//! warning.

use monoid_calculus::analysis::{AnalysisReport, Code, Severity};
use monoid_calculus::types::Schema;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    schema: Schema,
    deny_warnings: bool,
    deny: Vec<Code>,
    json: bool,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: oqlint [--schema travel|company] [--deny-warnings] [--deny CODE] [--json] [FILE...]"
    );
    std::process::exit(2);
}

/// Resolve a `--deny` operand like `MC007` to its lint code.
fn parse_code(s: &str) -> Code {
    match Code::all().iter().find(|c| c.as_str().eq_ignore_ascii_case(s)) {
        Some(c) => *c,
        None => {
            let known: Vec<&str> = Code::all().iter().map(|c| c.as_str()).collect();
            eprintln!("oqlint: unknown lint code `{s}` (known: {})", known.join(", "));
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Options {
    let mut schema = monoid_store::travel::schema();
    let mut deny_warnings = false;
    let mut deny = Vec::new();
    let mut json = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => {
                schema = match args.next().as_deref() {
                    Some("travel") => monoid_store::travel::schema(),
                    Some("company") => monoid_store::company::schema(),
                    _ => usage(),
                }
            }
            "--deny-warnings" => deny_warnings = true,
            "--deny" => match args.next() {
                Some(code) => deny.push(parse_code(&code)),
                None => usage(),
            },
            "--json" => json = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            _ => usage(),
        }
    }
    Options { schema, deny_warnings, deny, json, files }
}

/// Lint one source text; returns whether it should fail the run.
fn lint_source(name: &str, src: &str, opts: &Options) -> bool {
    let report = match monoid_oql::compile_analyzed(&opts.schema, src) {
        Ok((expr, spans)) => AnalysisReport::with_spans(&expr, &spans),
        Err(e) => {
            if opts.json {
                use monoid_calculus::json::Json;
                let j = Json::obj(vec![
                    ("file", Json::str(name)),
                    ("error", Json::str(e.to_string())),
                ]);
                println!("{}", j.render());
            } else {
                eprintln!("{name}: error: {e}");
            }
            return true;
        }
    };
    if opts.json {
        use monoid_calculus::json::Json;
        let j = Json::obj(vec![("file", Json::str(name)), ("report", report.to_json())]);
        println!("{}", j.render());
    } else {
        for d in &report.diagnostics {
            println!("{name}: {d}");
        }
        if report.diagnostics.is_empty() {
            eprintln!("{name}: clean ({})", report.effects);
        }
    }
    let deny_at = if opts.deny_warnings { Severity::Warning } else { Severity::Error };
    report.max_severity().is_some_and(|s| s >= deny_at)
        || report.diagnostics.iter().any(|d| opts.deny.contains(&d.code))
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut failed = false;
    if opts.files.is_empty() {
        let mut src = String::new();
        if std::io::stdin().read_to_string(&mut src).is_err() || src.trim().is_empty() {
            usage();
        }
        failed |= lint_source("<stdin>", &src, &opts);
    } else {
        for f in &opts.files {
            match std::fs::read_to_string(f) {
                Ok(src) => failed |= lint_source(f, &src, &opts),
                Err(e) => {
                    eprintln!("{f}: error: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
