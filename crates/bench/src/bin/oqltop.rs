//! `oqltop` — top queries from the flight recorder.
//!
//! Renders what the process-wide recorder remembers — top statements by
//! cumulative or tail latency, cache hit ratios, per-phase totals,
//! parallel fallbacks — from either a dumped journal (`--journal FILE`,
//! the `FlightRecorder::to_json` document the `regress` binary writes
//! with `--journal-out`) or, with no file, a live demo: a short
//! travel-store workload runs through `Session::query` in-process and
//! the screen shows the recorder's snapshot of it.
//!
//! ```text
//! oqltop [--journal FILE] [--slow FILE] [--top N] [--by total|p95] [--json]
//!        [--audit] [--flame]
//! ```
//!
//! `--slow FILE` pretty-prints a dumped slow-query log (captures with
//! plans/profiles) after the table. `--audit` switches to the
//! plan-quality view — per-operator q-errors and per-row overhead, from
//! the slow log's captured profiles (with `--slow`) or a live audited
//! demo run. `--flame` emits folded flamegraph stacks
//! (`frame;frame value`, `flamegraph.pl` / inferno input) to stdout from
//! the same sources. Exit status: 0 on success, 2 on usage or
//! unreadable/malformed input.

use monoid_bench::audit;
use monoid_bench::harness::fmt_nanos;
use monoid_bench::top::{aggregate, load_journal_lenient, SortBy};
use monoid_calculus::json::Json;

struct Options {
    journal: Option<String>,
    slow: Option<String>,
    top: usize,
    by: SortBy,
    json: bool,
    audit: bool,
    flame: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: oqltop [--journal FILE] [--slow FILE] [--top N] [--by total|p95] [--json] \
         [--audit] [--flame]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        journal: None,
        slow: None,
        top: 10,
        by: SortBy::default(),
        json: false,
        audit: false,
        flame: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => opts.journal = Some(args.next().unwrap_or_else(|| usage())),
            "--slow" => opts.slow = Some(args.next().unwrap_or_else(|| usage())),
            "--top" => {
                opts.top = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--by" => {
                opts.by = args.next().as_deref().and_then(SortBy::parse).unwrap_or_else(|| usage());
            }
            "--json" => opts.json = true,
            "--audit" => opts.audit = true,
            "--flame" => opts.flame = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// With no journal, give the recorder something to remember: the
/// canonical travel statements served repeatedly through one session
/// (misses, then hits) plus one direct `explain_analyze`.
fn demo_workload() {
    use monoid_db::{Params, Session};
    use monoid_store::{travel, TravelScale};

    let mut db = travel::generate(TravelScale::tiny(), 7);
    let session = Session::new();
    let statements = [
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = \"Portland\" and r.bed# = 2",
        "exists h in Hotels: h.name = \"hotel_0_0\"",
        "sum(select r.price from c in Cities, h in c.hotels, r in h.rooms)",
    ];
    for _ in 0..5 {
        for src in &statements {
            let _ = session.query(&mut db, src, &Params::new());
        }
    }
    let _ = monoid_db::explain_analyze(statements[0], &mut db);
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: not JSON: {e}");
        std::process::exit(2);
    })
}

fn render_slow_log(doc: &Json) {
    let captures = doc.get("captures").and_then(Json::as_arr).unwrap_or_else(|| {
        eprintln!("slow log has no `captures` array");
        std::process::exit(2);
    });
    let threshold = doc.get("threshold_nanos").and_then(Json::as_u64).unwrap_or(0);
    println!("\nslow-query log: {} captures (threshold {})", captures.len(), fmt_nanos(threshold.into()));
    for c in captures {
        let source = c.get("source").and_then(Json::as_str).unwrap_or("<unknown>");
        let total = c.get("total_nanos").and_then(Json::as_u64).unwrap_or(0);
        println!("\n[{}] {}", fmt_nanos(total.into()), source.replace('\n', " "));
        if let Some(plan) = c.get("plan").and_then(Json::as_str) {
            for line in plan.lines() {
                println!("  {line}");
            }
        }
        if let Some(profile) = c.get("profile").filter(|p| !matches!(p, Json::Null)) {
            println!("  profile: {}", profile.render());
        }
    }
}

/// The slow log's captures as `(source, profile_json)` pairs — only the
/// captures whose replay was safe enough to profile carry one.
fn slow_profiles(path: &str) -> Vec<(String, Json)> {
    let doc = read_json(path);
    let captures = doc.get("captures").and_then(Json::as_arr).unwrap_or_else(|| {
        eprintln!("{path}: slow log has no `captures` array");
        std::process::exit(2);
    });
    captures
        .iter()
        .filter_map(|c| {
            let source = c.get("source").and_then(Json::as_str).unwrap_or("<unknown>");
            c.get("profile")
                .filter(|p| !matches!(p, Json::Null))
                .map(|p| (source.to_string(), p.clone()))
        })
        .collect()
}

/// A live profiled run of the demo statements, q-error auditing on for
/// the duration, as `(source, profile_json)` pairs.
fn demo_profiles() -> Vec<(String, Json)> {
    use monoid_store::{travel, TravelScale};

    let mut db = travel::generate(TravelScale::tiny(), 7);
    let statements = [
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = \"Portland\" and r.bed# = 2",
        "exists h in Hotels: h.name = \"hotel_0_0\"",
        "sum(select r.price from c in Cities, h in c.hotels, r in h.rooms)",
    ];
    let prev = monoid_algebra::set_audit_enabled(true);
    let profiles = statements
        .iter()
        .filter_map(|src| {
            monoid_db::explain_analyze(src, &mut db)
                .ok()
                .map(|a| (src.to_string(), a.profile.to_json()))
        })
        .collect();
    monoid_algebra::set_audit_enabled(prev);
    profiles
}

/// `--flame`: folded stacks to stdout, one tower per profiled query,
/// rooted at the (sanitized) statement source.
fn run_flame(profiles: &[(String, Json)]) {
    if profiles.is_empty() {
        eprintln!("no profiles to fold (slow log without captured profiles?)");
        std::process::exit(2);
    }
    for (source, profile) in profiles {
        print!("{}", audit::folded_from_profile_json(&source.replace('\n', " "), profile));
    }
}

/// `--audit`: per-query q-error headlines, the corpus kind table, and —
/// when the registry saw audited runs — its per-kind q-error histograms.
fn run_audit(profiles: &[(String, Json)], from_slow_log: bool) {
    if profiles.is_empty() {
        eprintln!("no profiles to audit (slow log without captured profiles?)");
        std::process::exit(2);
    }
    println!(
        "plan-quality audit of {} profile(s) ({})\n",
        profiles.len(),
        if from_slow_log { "slow-query log" } else { "live demo workload" },
    );
    let mut all = Vec::new();
    for (source, profile) in profiles {
        let ops = audit::operators_from_profile_json(profile);
        let mut qs: Vec<f64> = ops.iter().map(|o| o.q_error).collect();
        qs.sort_by(f64::total_cmp);
        let median = if qs.is_empty() { 1.0 } else { qs[(qs.len() - 1) / 2] };
        let worst = ops.iter().max_by(|a, b| a.q_error.total_cmp(&b.q_error));
        println!("{}", source.replace('\n', " "));
        match worst {
            Some(w) => println!(
                "  q-error median {:.2}, max {:.2} at op {} ({})",
                median, w.q_error, w.op, w.label
            ),
            None => println!("  (no operators in profile)"),
        }
        all.extend(ops);
    }
    println!("\n{}", audit::render_kind_table(&audit::aggregate_kinds(all.iter())));
    let registry = audit::render_registry_audit(&monoid_calculus::metrics::global().snapshot());
    if !registry.is_empty() {
        println!("{registry}");
    }
}

fn main() {
    let opts = parse_args();
    if opts.audit || opts.flame {
        let (profiles, from_slow_log) = match &opts.slow {
            Some(path) => (slow_profiles(path), true),
            None => (demo_profiles(), false),
        };
        if opts.flame {
            run_flame(&profiles);
        }
        if opts.audit {
            run_audit(&profiles, from_slow_log);
        }
        return;
    }
    let records = match &opts.journal {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            });
            // Lenient: journals from older builds load with defaults and
            // a warning instead of failing the whole screen.
            let journal = load_journal_lenient(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            });
            for w in &journal.warnings {
                eprintln!("{path}: warning: {w}");
            }
            journal.records
        }
        None => {
            let recorder = monoid_calculus::recorder::global();
            if recorder.is_empty() && recorder.enabled() {
                demo_workload();
            }
            recorder.snapshot()
        }
    };
    let report = aggregate(&records);
    if opts.json {
        println!("{}", report.to_json().render_pretty());
    } else {
        if opts.journal.is_none() {
            println!("live snapshot of this process's flight recorder\n");
        }
        print!("{}", report.render(opts.top, opts.by));
    }
    if let Some(path) = &opts.slow {
        render_slow_log(&read_json(path));
    }
}
