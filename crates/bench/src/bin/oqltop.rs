//! `oqltop` — top queries from the flight recorder.
//!
//! Renders what the process-wide recorder remembers — top statements by
//! cumulative or tail latency, cache hit ratios, per-phase totals,
//! parallel fallbacks — from either a dumped journal (`--journal FILE`,
//! the `FlightRecorder::to_json` document the `regress` binary writes
//! with `--journal-out`) or, with no file, a live demo: a short
//! travel-store workload runs through `Session::query` in-process and
//! the screen shows the recorder's snapshot of it.
//!
//! ```text
//! oqltop [--journal FILE] [--slow FILE] [--top N] [--by total|p95] [--json]
//! ```
//!
//! `--slow FILE` pretty-prints a dumped slow-query log (captures with
//! plans/profiles) after the table. Exit status: 0 on success, 2 on
//! usage or unreadable/malformed input.

use monoid_bench::harness::fmt_nanos;
use monoid_bench::top::{aggregate, load_journal, SortBy};
use monoid_calculus::json::Json;

struct Options {
    journal: Option<String>,
    slow: Option<String>,
    top: usize,
    by: SortBy,
    json: bool,
}

fn usage() -> ! {
    eprintln!("usage: oqltop [--journal FILE] [--slow FILE] [--top N] [--by total|p95] [--json]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts =
        Options { journal: None, slow: None, top: 10, by: SortBy::default(), json: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => opts.journal = Some(args.next().unwrap_or_else(|| usage())),
            "--slow" => opts.slow = Some(args.next().unwrap_or_else(|| usage())),
            "--top" => {
                opts.top = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--by" => {
                opts.by = args.next().as_deref().and_then(SortBy::parse).unwrap_or_else(|| usage());
            }
            "--json" => opts.json = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// With no journal, give the recorder something to remember: the
/// canonical travel statements served repeatedly through one session
/// (misses, then hits) plus one direct `explain_analyze`.
fn demo_workload() {
    use monoid_db::{Params, Session};
    use monoid_store::{travel, TravelScale};

    let mut db = travel::generate(TravelScale::tiny(), 7);
    let session = Session::new();
    let statements = [
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = \"Portland\" and r.bed# = 2",
        "exists h in Hotels: h.name = \"hotel_0_0\"",
        "sum(select r.price from c in Cities, h in c.hotels, r in h.rooms)",
    ];
    for _ in 0..5 {
        for src in &statements {
            let _ = session.query(&mut db, src, &Params::new());
        }
    }
    let _ = monoid_db::explain_analyze(statements[0], &mut db);
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: not JSON: {e}");
        std::process::exit(2);
    })
}

fn render_slow_log(doc: &Json) {
    let captures = doc.get("captures").and_then(Json::as_arr).unwrap_or_else(|| {
        eprintln!("slow log has no `captures` array");
        std::process::exit(2);
    });
    let threshold = doc.get("threshold_nanos").and_then(Json::as_u64).unwrap_or(0);
    println!("\nslow-query log: {} captures (threshold {})", captures.len(), fmt_nanos(threshold.into()));
    for c in captures {
        let source = c.get("source").and_then(Json::as_str).unwrap_or("<unknown>");
        let total = c.get("total_nanos").and_then(Json::as_u64).unwrap_or(0);
        println!("\n[{}] {}", fmt_nanos(total.into()), source.replace('\n', " "));
        if let Some(plan) = c.get("plan").and_then(Json::as_str) {
            for line in plan.lines() {
                println!("  {line}");
            }
        }
        if let Some(profile) = c.get("profile").filter(|p| !matches!(p, Json::Null)) {
            println!("  profile: {}", profile.render());
        }
    }
}

fn main() {
    let opts = parse_args();
    let records = match &opts.journal {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            });
            load_journal(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            })
        }
        None => {
            let recorder = monoid_calculus::recorder::global();
            if recorder.is_empty() && recorder.enabled() {
                demo_workload();
            }
            recorder.snapshot()
        }
    };
    let report = aggregate(&records);
    if opts.json {
        println!("{}", report.to_json().render_pretty());
    } else {
        if opts.journal.is_none() {
            println!("live snapshot of this process's flight recorder\n");
        }
        print!("{}", report.render(opts.top, opts.by));
    }
    if let Some(path) = &opts.slow {
        render_slow_log(&read_json(path));
    }
}
