//! `regress` — the bench-regression harness binary.
//!
//! Runs the canonical paper queries (company + travel stores) through the
//! full normalize → plan → metered-execute pipeline N times, then writes
//! `BENCH_regress.json` at the repo root: per-query median/p95/p99 wall
//! times plus the metrics-registry delta (per-rule normalization counts,
//! per-operator row totals, store counters, phase histograms).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p monoid-bench --bin regress [-- --quick] [--warm] [--out PATH]
//!     [--compare BASELINE.json] [--tolerance PCT] [--slow-out PATH] [--journal-out PATH]
//! ```
//!
//! `--quick` shrinks the stores and run counts for CI smoke runs.
//! `--warm` serves the prepared section from the pre-warmed process-wide
//! plan cache (timing full `Session::query` hits) instead of a cold
//! private one; CI runs both and uploads the two reports side by side.
//!
//! `--compare BASELINE.json` turns the run into a regression *gate*: the
//! fresh report is diffed against the baseline per query (median/p95,
//! prepared warm median) with `--tolerance PCT` relative slack (default
//! 50) plus an absolute noise floor of `--min-delta NANOS` (default
//! 1 ms), and the process exits 1 when anything regressed.
//! `--slow-out` / `--journal-out` dump the flight recorder's slow-query
//! log (only when non-empty) and record journal after the run — set
//! `MONOID_SLOW_QUERY_NANOS` to arm the former.
//!
//! `--audit` additionally runs the plan-quality audit over the same
//! corpus — per-operator q-errors and per-row overhead — and writes
//! `BENCH_audit.json` (`--audit-out PATH` to relocate). With
//! `--audit-baseline BASELINE.json` the corpus-median q-error is gated
//! against the committed baseline at `--audit-tolerance PCT` (default
//! 50), sharing the compare gate's exit-1 semantics. `--flame-out PATH`
//! writes the corpus's folded flamegraph stacks.

use monoid_bench::audit::{self, DEFAULT_AUDIT_TOLERANCE_PCT};
use monoid_bench::compare::{compare_reports, DEFAULT_MIN_DELTA_NANOS, DEFAULT_TOLERANCE_PCT};
use monoid_bench::harness::{fmt_nanos, Table};
use monoid_bench::regress;
use monoid_calculus::json::Json;

fn main() {
    let mut quick = false;
    let mut warm = false;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE_PCT;
    let mut min_delta = DEFAULT_MIN_DELTA_NANOS;
    let mut slow_out: Option<String> = None;
    let mut journal_out: Option<String> = None;
    let mut run_audit = false;
    let mut audit_out: Option<String> = None;
    let mut audit_baseline: Option<String> = None;
    let mut audit_tolerance = DEFAULT_AUDIT_TOLERANCE_PCT;
    let mut flame_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a path");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--warm" => warm = true,
            "--out" => out = Some(path_arg(&mut args, "--out")),
            "--compare" => compare = Some(path_arg(&mut args, "--compare")),
            "--tolerance" => {
                tolerance = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a percentage");
                    std::process::exit(2);
                });
            }
            "--min-delta" => {
                min_delta = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--min-delta needs a nanosecond count");
                    std::process::exit(2);
                });
            }
            "--slow-out" => slow_out = Some(path_arg(&mut args, "--slow-out")),
            "--journal-out" => journal_out = Some(path_arg(&mut args, "--journal-out")),
            "--audit" => run_audit = true,
            "--audit-out" => {
                run_audit = true;
                audit_out = Some(path_arg(&mut args, "--audit-out"));
            }
            "--audit-baseline" => {
                run_audit = true;
                audit_baseline = Some(path_arg(&mut args, "--audit-baseline"));
            }
            "--audit-tolerance" => {
                audit_tolerance = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--audit-tolerance needs a percentage");
                    std::process::exit(2);
                });
            }
            "--flame-out" => {
                run_audit = true;
                flame_out = Some(path_arg(&mut args, "--flame-out"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: regress [--quick] [--warm] [--out PATH] [--compare BASELINE.json] \
                     [--tolerance PCT] [--min-delta NANOS] [--slow-out PATH] [--journal-out PATH] \
                     [--audit] [--audit-out PATH] [--audit-baseline BASELINE.json] \
                     [--audit-tolerance PCT] [--flame-out PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // The binary lives in crates/bench; the report belongs at the
        // repo root so PRs diff it in place.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regress.json").to_string()
    });

    let report = regress::run_with(quick, warm);

    let mut table = Table::new(&["query", "store", "p50", "p95", "p99", "rows→reduce", "norm steps"]);
    for q in &report.queries {
        table.row(&[
            q.name.to_string(),
            q.store.to_string(),
            fmt_nanos(q.p50_nanos),
            fmt_nanos(q.p95_nanos),
            fmt_nanos(q.p99_nanos),
            q.rows_to_reduce.to_string(),
            q.normalize.steps.to_string(),
        ]);
    }
    println!(
        "regress: {} queries × {} runs{}\n",
        report.queries.len(),
        report.runs_per_query,
        if report.quick { " (quick)" } else { "" }
    );
    println!("{}", table.render());

    let mut etable =
        Table::new(&["parallel query", "engine", "fused p50", "plan-walk p50", "fusion speedup"]);
    for p in &report.parallel {
        etable.row(&[
            p.name.to_string(),
            p.engine.to_string(),
            fmt_nanos(p.sequential_p50_nanos),
            fmt_nanos(p.plan_walk_p50_nanos),
            format!("{:.2}x", p.fused_speedup),
        ]);
    }
    println!("{}", etable.render());

    let mut ptable = Table::new(&["parallel query", "threads", "workers", "p50", "p95", "speedup"]);
    for p in &report.parallel {
        for t in &p.threads {
            ptable.row(&[
                p.name.to_string(),
                t.threads.to_string(),
                t.workers.to_string(),
                fmt_nanos(t.p50_nanos),
                fmt_nanos(t.p95_nanos),
                format!("{:.2}x", t.speedup_vs_sequential),
            ]);
        }
    }
    println!("{}", ptable.render());

    if report.warm {
        println!("prepared section served from the pre-warmed process-wide cache (--warm)\n");
    }
    let mut stable =
        Table::new(&["prepared statement", "cold p50", "cold p95", "warm p50", "warm p95", "speedup"]);
    for p in &report.prepared {
        stable.row(&[
            p.name.to_string(),
            fmt_nanos(p.cold_p50_nanos),
            fmt_nanos(p.cold_p95_nanos),
            fmt_nanos(p.warm_p50_nanos),
            fmt_nanos(p.warm_p95_nanos),
            format!("{:.2}x", p.warm_speedup),
        ]);
    }
    println!("{}", stable.render());

    let mut svtable =
        Table::new(&["serving statement", "cold first", "warm/query", "clients", "q/s"]);
    for s in &report.serving {
        for p in &s.points {
            svtable.row(&[
                s.name.to_string(),
                fmt_nanos(s.cold_first_query_nanos),
                fmt_nanos(s.warm_nanos_per_query),
                p.clients.to_string(),
                format!("{:.0}", p.queries_per_sec),
            ]);
        }
    }
    println!("{}", svtable.render());
    println!("operator rows: {:?}", report.operator_rows());
    println!("rules fired:   {:?}", report.rule_firings());

    let report_json = report.to_json();
    if let Err(e) = std::fs::write(&out, format!("{}\n", report_json.render_pretty())) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out}");

    // Dump what the flight recorder saw during the run. The slow log is
    // only written when it captured something — CI uploads it as an
    // artifact iff the file exists.
    let recorder = monoid_calculus::recorder::global();
    if let Some(path) = &journal_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", recorder.to_json().render_pretty())) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} ({} records)", recorder.len());
    }
    if let Some(path) = &slow_out {
        let captures = recorder.slow_log();
        if captures.is_empty() {
            println!(
                "slow-query log empty (threshold {}), not writing {path}",
                fmt_nanos(recorder.slow_threshold().into())
            );
        } else {
            let doc = recorder.slow_log_json();
            if let Err(e) = std::fs::write(path, format!("{}\n", doc.render_pretty())) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path} ({} slow-query captures)", captures.len());
        }
    }

    // Both gates report before the process exits, so one CI run shows
    // every regression at once instead of one per push.
    let mut gate_failed = false;

    // The plan-quality audit: same corpus, one profiled pass per query
    // with q-error auditing on.
    if run_audit {
        let audit_out = audit_out.unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json").to_string()
        });
        let mut audit_report = audit::run(quick);
        let baseline = audit_baseline.as_ref().map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read audit baseline {path}: {e}");
                std::process::exit(2);
            });
            Json::parse(&text).unwrap_or_else(|e| {
                eprintln!("audit baseline {path} is not JSON: {e}");
                std::process::exit(2);
            })
        });
        if let Some(b) = &baseline {
            audit_report = audit_report.with_drift(b);
        }
        println!();
        print!("{}", audit_report.render());
        if let Err(e) = std::fs::write(&audit_out, format!("{}\n", audit_report.to_json().render_pretty())) {
            eprintln!("cannot write {audit_out}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {audit_out}");
        if let Some(path) = &flame_out {
            if let Err(e) = std::fs::write(path, audit_report.corpus_folded()) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path} (corpus folded stacks)");
        }
        if let Some(b) = &baseline {
            let baseline_path = audit_baseline.as_deref().unwrap_or("?");
            match audit::gate(&audit_report, b, audit_tolerance) {
                Ok(outcome) => {
                    println!("\naudit gate against {baseline_path}:");
                    for note in &outcome.notes {
                        println!("  note: {note}");
                    }
                    for regression in &outcome.regressions {
                        println!("  REGRESSION: {regression}");
                        gate_failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("cannot gate against {baseline_path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    // The latency gate: diff this run against the committed baseline and
    // fail the process on regressions beyond tolerance.
    if let Some(baseline_path) = &compare {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("baseline {baseline_path} is not JSON: {e}");
            std::process::exit(2);
        });
        let verdict =
            compare_reports(&report_json, &baseline, tolerance, min_delta).unwrap_or_else(|e| {
            eprintln!("cannot compare against {baseline_path}: {e}");
            std::process::exit(2);
        });
        println!("\ncompared against {baseline_path}:");
        print!("{}", verdict.render());
        if !verdict.passed() {
            gate_failed = true;
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
