//! `regress` — the bench-regression harness binary.
//!
//! Runs the canonical paper queries (company + travel stores) through the
//! full normalize → plan → metered-execute pipeline N times, then writes
//! `BENCH_regress.json` at the repo root: per-query median/p95/p99 wall
//! times plus the metrics-registry delta (per-rule normalization counts,
//! per-operator row totals, store counters, phase histograms).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p monoid-bench --bin regress [-- --quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the stores and run counts for CI smoke runs.

use monoid_bench::harness::{fmt_nanos, Table};
use monoid_bench::regress;

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: regress [--quick] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // The binary lives in crates/bench; the report belongs at the
        // repo root so PRs diff it in place.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regress.json").to_string()
    });

    let report = regress::run(quick);

    let mut table = Table::new(&["query", "store", "p50", "p95", "p99", "rows→reduce", "norm steps"]);
    for q in &report.queries {
        table.row(&[
            q.name.to_string(),
            q.store.to_string(),
            fmt_nanos(q.p50_nanos),
            fmt_nanos(q.p95_nanos),
            fmt_nanos(q.p99_nanos),
            q.rows_to_reduce.to_string(),
            q.normalize.steps.to_string(),
        ]);
    }
    println!(
        "regress: {} queries × {} runs{}\n",
        report.queries.len(),
        report.runs_per_query,
        if report.quick { " (quick)" } else { "" }
    );
    println!("{}", table.render());

    let mut ptable = Table::new(&["parallel query", "threads", "workers", "p50", "p95", "speedup"]);
    for p in &report.parallel {
        for t in &p.threads {
            ptable.row(&[
                p.name.to_string(),
                t.threads.to_string(),
                t.workers.to_string(),
                fmt_nanos(t.p50_nanos),
                fmt_nanos(t.p95_nanos),
                format!("{:.2}x", t.speedup_vs_sequential),
            ]);
        }
    }
    println!("{}", ptable.render());
    println!("operator rows: {:?}", report.operator_rows());
    println!("rules fired:   {:?}", report.rule_firings());

    let json = report.to_json().render_pretty();
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out}");
}
