//! `regress` — the bench-regression harness binary.
//!
//! Runs the canonical paper queries (company + travel stores) through the
//! full normalize → plan → metered-execute pipeline N times, then writes
//! `BENCH_regress.json` at the repo root: per-query median/p95/p99 wall
//! times plus the metrics-registry delta (per-rule normalization counts,
//! per-operator row totals, store counters, phase histograms).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p monoid-bench --bin regress [-- --quick] [--warm] [--out PATH]
//! ```
//!
//! `--quick` shrinks the stores and run counts for CI smoke runs.
//! `--warm` serves the prepared section from the pre-warmed process-wide
//! plan cache (timing full `Session::query` hits) instead of a cold
//! private one; CI runs both and uploads the two reports side by side.

use monoid_bench::harness::{fmt_nanos, Table};
use monoid_bench::regress;

fn main() {
    let mut quick = false;
    let mut warm = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--warm" => warm = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: regress [--quick] [--warm] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        // The binary lives in crates/bench; the report belongs at the
        // repo root so PRs diff it in place.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regress.json").to_string()
    });

    let report = regress::run_with(quick, warm);

    let mut table = Table::new(&["query", "store", "p50", "p95", "p99", "rows→reduce", "norm steps"]);
    for q in &report.queries {
        table.row(&[
            q.name.to_string(),
            q.store.to_string(),
            fmt_nanos(q.p50_nanos),
            fmt_nanos(q.p95_nanos),
            fmt_nanos(q.p99_nanos),
            q.rows_to_reduce.to_string(),
            q.normalize.steps.to_string(),
        ]);
    }
    println!(
        "regress: {} queries × {} runs{}\n",
        report.queries.len(),
        report.runs_per_query,
        if report.quick { " (quick)" } else { "" }
    );
    println!("{}", table.render());

    let mut ptable = Table::new(&["parallel query", "threads", "workers", "p50", "p95", "speedup"]);
    for p in &report.parallel {
        for t in &p.threads {
            ptable.row(&[
                p.name.to_string(),
                t.threads.to_string(),
                t.workers.to_string(),
                fmt_nanos(t.p50_nanos),
                fmt_nanos(t.p95_nanos),
                format!("{:.2}x", t.speedup_vs_sequential),
            ]);
        }
    }
    println!("{}", ptable.render());

    if report.warm {
        println!("prepared section served from the pre-warmed process-wide cache (--warm)\n");
    }
    let mut stable =
        Table::new(&["prepared statement", "cold p50", "cold p95", "warm p50", "warm p95", "speedup"]);
    for p in &report.prepared {
        stable.row(&[
            p.name.to_string(),
            fmt_nanos(p.cold_p50_nanos),
            fmt_nanos(p.cold_p95_nanos),
            fmt_nanos(p.warm_p50_nanos),
            fmt_nanos(p.warm_p95_nanos),
            format!("{:.2}x", p.warm_speedup),
        ]);
    }
    println!("{}", stable.render());
    println!("operator rows: {:?}", report.operator_rows());
    println!("rules fired:   {:?}", report.rule_firings());

    let json = report.to_json().render_pretty();
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out}");
}
