//! The plan-quality audit behind `regress --audit` and `oqltop --audit`:
//! run the canonical regression corpus once under the profiler with
//! q-error auditing on, and report — per query, per operator, and per
//! operator *kind* — how honest the optimizer's cardinality estimates
//! were (q-error, `max(est/actual, actual/est)`) and what each operator
//! kind costs per row it produces (self-nanos, evaluator steps, heap
//! allocations, each divided by rows out).
//!
//! The `regress` binary serializes the report to `BENCH_audit.json` at
//! the repo root next to `BENCH_regress.json`; with `--audit-baseline`
//! a fresh run is gated on the committed baseline's corpus-median
//! q-error ([`gate`]). Latency regressions have their own gate
//! ([`crate::compare`]) — this one catches *estimate drift*: a cost-model
//! or statistics change that quietly starts lying about cardinalities
//! without (yet) showing up as wall-clock time.
//!
//! The module also exports the helpers `oqltop --audit` / `--flame` use
//! to audit and fold profiles captured in slow-query logs, including
//! profiles written by older builds (missing fields are derived or
//! defaulted, never fatal).

use crate::harness::{fmt_nanos, Table};
use crate::regress::{self, host_meta, HostMeta};
use monoid_calculus::json::Json;
use monoid_calculus::metrics::{MetricValue, Snapshot};
use monoid_algebra::{OperatorProfile, QueryProfile};

/// Audit schema version stamped into `BENCH_audit.json`.
pub const AUDIT_SCHEMA_VERSION: i64 = 1;

/// Default `--audit-tolerance` (percent): the corpus-median q-error may
/// grow this much over the committed baseline before the gate fails.
pub const DEFAULT_AUDIT_TOLERANCE_PCT: f64 = 50.0;

/// Absolute q-error noise floor: a corpus-median drift below this many
/// q-units never fails the gate, however large it is relatively.
/// Estimates around 1.0–1.25 jitter with store seeds; a drift that small
/// is noise, not a cost-model lie.
pub const AUDIT_NOISE_FLOOR_Q: f64 = 0.25;

/// One operator's audit row: the estimate-vs-actual verdict plus
/// per-row overhead attribution.
#[derive(Debug, Clone)]
pub struct OperatorAudit {
    pub op: u64,
    /// The `explain` label, e.g. `Scan c ← Cities`.
    pub label: String,
    /// Bounded operator kind (`scan`, `filter`, `join`, …).
    pub kind: String,
    pub depth: u64,
    pub estimated_rows: f64,
    pub actual_rows: u64,
    pub q_error: f64,
    pub self_nanos: u64,
    pub eval_steps: u64,
    pub heap_allocs: u64,
}

/// The clamped q-error formula shared with
/// [`monoid_algebra::OperatorProfile::q_error`] — duplicated here so
/// profiles loaded from JSON (which may predate the `q_error` field)
/// get the same number.
fn q_error(estimated_rows: f64, actual_rows: u64) -> f64 {
    let est = estimated_rows.max(1.0);
    let actual = (actual_rows as f64).max(1.0);
    (est / actual).max(actual / est)
}

/// Derive the operator kind from an `explain` label — the fallback for
/// profiles written before operators carried a `kind` field.
fn kind_from_label(label: &str) -> &'static str {
    if label.starts_with("Scan") {
        "scan"
    } else if label.starts_with("IndexLookup") {
        "index-lookup"
    } else if label.starts_with("Unnest") {
        "unnest"
    } else if label.starts_with("Filter") {
        "filter"
    } else if label.starts_with("Bind") {
        "bind"
    } else if label.starts_with("HashProbe") {
        "hash-probe"
    } else if label.contains("Join") {
        "join"
    } else {
        "other"
    }
}

impl OperatorAudit {
    pub fn from_profile(o: &OperatorProfile) -> OperatorAudit {
        OperatorAudit {
            op: o.op as u64,
            label: o.label.clone(),
            kind: o.kind.to_string(),
            depth: o.depth as u64,
            estimated_rows: o.estimated_rows,
            actual_rows: o.actual_rows,
            q_error: o.q_error(),
            self_nanos: o.self_nanos,
            eval_steps: o.eval_steps,
            heap_allocs: o.heap_allocs,
        }
    }

    /// Load an operator from a profile's JSON (`QueryProfile::to_json`
    /// operator entry). Lenient: fields newer than the writing build
    /// default to 0, `kind` falls back to a label heuristic, and
    /// `q_error` is recomputed when absent. `None` only when the entry
    /// isn't an object with a label.
    pub fn from_json(j: &Json) -> Option<OperatorAudit> {
        j.as_obj()?;
        let label = j.get("operator").and_then(Json::as_str)?.to_string();
        let u64_of = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let estimated_rows = j.get("estimated_rows").and_then(Json::as_f64).unwrap_or(0.0);
        let actual_rows = u64_of("actual_rows");
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .map_or_else(|| kind_from_label(&label).to_string(), ToString::to_string);
        Some(OperatorAudit {
            op: u64_of("op"),
            kind,
            depth: u64_of("depth"),
            estimated_rows,
            actual_rows,
            q_error: j
                .get("q_error")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| q_error(estimated_rows, actual_rows)),
            self_nanos: u64_of("self_nanos"),
            eval_steps: u64_of("eval_steps"),
            heap_allocs: u64_of("heap_allocs"),
            label,
        })
    }

    /// Self-nanos per row produced (rows clamped to ≥ 1).
    pub fn nanos_per_row(&self) -> f64 {
        self.self_nanos as f64 / self.actual_rows.max(1) as f64
    }

    /// Evaluator steps per row produced.
    pub fn steps_per_row(&self) -> f64 {
        self.eval_steps as f64 / self.actual_rows.max(1) as f64
    }

    /// Heap allocations per row produced.
    pub fn allocs_per_row(&self) -> f64 {
        self.heap_allocs as f64 / self.actual_rows.max(1) as f64
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("op", Json::from(self.op)),
            ("operator", Json::str(self.label.clone())),
            ("kind", Json::str(self.kind.clone())),
            ("depth", Json::from(self.depth)),
            ("estimated_rows", Json::Float(self.estimated_rows)),
            ("actual_rows", Json::from(self.actual_rows)),
            ("q_error", Json::Float(self.q_error)),
            ("self_nanos", Json::from(self.self_nanos)),
            ("eval_steps", Json::from(self.eval_steps)),
            ("heap_allocs", Json::from(self.heap_allocs)),
            ("nanos_per_row", Json::Float(self.nanos_per_row())),
            ("steps_per_row", Json::Float(self.steps_per_row())),
            ("allocs_per_row", Json::Float(self.allocs_per_row())),
        ])
    }
}

/// Load the operator audit rows out of a profile JSON document
/// (`QueryProfile::to_json`, e.g. from a slow-query capture).
pub fn operators_from_profile_json(profile: &Json) -> Vec<OperatorAudit> {
    profile
        .get("operators")
        .and_then(Json::as_arr)
        .map(|ops| ops.iter().filter_map(OperatorAudit::from_json).collect())
        .unwrap_or_default()
}

/// Fold a profile JSON document into flamegraph lines under `root`
/// (`monoid_algebra::fold_stacks` over the operators' label/depth/self
/// columns). Old profiles without `self_nanos` fold with zero-valued
/// leaves — the tree shape survives even when the widths don't.
pub fn folded_from_profile_json(root: &str, profile: &Json) -> String {
    let ops = operators_from_profile_json(profile);
    monoid_algebra::fold_stacks(
        root,
        ops.into_iter().map(|o| (o.label, o.depth as usize, o.self_nanos)),
    )
}

/// One corpus query's audit: its operators plus the headline numbers.
#[derive(Debug, Clone)]
pub struct QueryAudit {
    pub name: String,
    pub store: String,
    pub source: String,
    pub rows_to_reduce: u64,
    pub short_circuited: bool,
    pub median_q_error: f64,
    pub max_q_error: f64,
    /// Label of the worst-estimated operator.
    pub worst_operator: String,
    /// Pre-order position of the worst-estimated operator.
    pub worst_op: u64,
    pub operators: Vec<OperatorAudit>,
    /// The query's profile as folded flamegraph stacks.
    pub folded: String,
}

impl QueryAudit {
    pub fn from_profile(name: &str, store: &str, source: &str, p: &QueryProfile) -> QueryAudit {
        let worst = p.worst_q_error();
        QueryAudit {
            name: name.to_string(),
            store: store.to_string(),
            source: source.to_string(),
            rows_to_reduce: p.rows_to_reduce,
            short_circuited: p.short_circuited,
            median_q_error: p.median_q_error().unwrap_or(1.0),
            max_q_error: p.max_q_error().unwrap_or(1.0),
            worst_operator: worst.map(|o| o.label.clone()).unwrap_or_default(),
            worst_op: worst.map_or(0, |o| o.op as u64),
            operators: p.operators.iter().map(OperatorAudit::from_profile).collect(),
            folded: p.to_folded(),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name.clone())),
            ("store", Json::str(self.store.clone())),
            ("source", Json::str(self.source.clone())),
            ("rows_to_reduce", Json::from(self.rows_to_reduce)),
            ("short_circuited", Json::Bool(self.short_circuited)),
            ("median_q_error", Json::Float(self.median_q_error)),
            ("max_q_error", Json::Float(self.max_q_error)),
            ("worst_operator", Json::str(self.worst_operator.clone())),
            ("worst_op", Json::from(self.worst_op)),
            ("operators", Json::Arr(self.operators.iter().map(OperatorAudit::to_json).collect())),
        ])
    }
}

/// Aggregate overhead and estimate quality for one operator kind across
/// the whole corpus.
#[derive(Debug, Clone)]
pub struct KindAudit {
    pub kind: String,
    /// Operator instances of this kind across the corpus.
    pub operators: u64,
    /// Rows those operators pushed, summed.
    pub rows: u64,
    pub median_q_error: f64,
    pub max_q_error: f64,
    pub self_nanos: u64,
    pub eval_steps: u64,
    pub heap_allocs: u64,
}

impl KindAudit {
    pub fn nanos_per_row(&self) -> f64 {
        self.self_nanos as f64 / self.rows.max(1) as f64
    }

    pub fn steps_per_row(&self) -> f64 {
        self.eval_steps as f64 / self.rows.max(1) as f64
    }

    pub fn allocs_per_row(&self) -> f64 {
        self.heap_allocs as f64 / self.rows.max(1) as f64
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str(self.kind.clone())),
            ("operators", Json::from(self.operators)),
            ("rows", Json::from(self.rows)),
            ("median_q_error", Json::Float(self.median_q_error)),
            ("max_q_error", Json::Float(self.max_q_error)),
            ("self_nanos", Json::from(self.self_nanos)),
            ("eval_steps", Json::from(self.eval_steps)),
            ("heap_allocs", Json::from(self.heap_allocs)),
            ("nanos_per_row", Json::Float(self.nanos_per_row())),
            ("steps_per_row", Json::Float(self.steps_per_row())),
            ("allocs_per_row", Json::Float(self.allocs_per_row())),
        ])
    }
}

/// The lower median of a slice (sorted in place); 1.0 when empty.
fn lower_median(qs: &mut [f64]) -> f64 {
    if qs.is_empty() {
        return 1.0;
    }
    qs.sort_by(f64::total_cmp);
    qs[(qs.len() - 1) / 2]
}

/// Fold a set of audited operators into per-kind aggregates, ordered by
/// total self time (hottest kind first).
pub fn aggregate_kinds<'a>(ops: impl Iterator<Item = &'a OperatorAudit>) -> Vec<KindAudit> {
    // kind → (q-errors, aggregate), insertion-ordered.
    let mut groups: Vec<(Vec<f64>, KindAudit)> = Vec::new();
    for o in ops {
        let entry = match groups.iter_mut().find(|(_, k)| k.kind == o.kind) {
            Some(entry) => entry,
            None => {
                groups.push((
                    Vec::new(),
                    KindAudit {
                        kind: o.kind.clone(),
                        operators: 0,
                        rows: 0,
                        median_q_error: 1.0,
                        max_q_error: 1.0,
                        self_nanos: 0,
                        eval_steps: 0,
                        heap_allocs: 0,
                    },
                ));
                groups.last_mut().expect("just pushed")
            }
        };
        let (qs, k) = entry;
        qs.push(o.q_error);
        k.operators += 1;
        k.rows += o.actual_rows;
        k.max_q_error = k.max_q_error.max(o.q_error);
        k.self_nanos += o.self_nanos;
        k.eval_steps += o.eval_steps;
        k.heap_allocs += o.heap_allocs;
    }
    let mut kinds: Vec<KindAudit> = groups
        .into_iter()
        .map(|(mut qs, mut k)| {
            k.median_q_error = lower_median(&mut qs);
            k
        })
        .collect();
    kinds.sort_by_key(|k| std::cmp::Reverse(k.self_nanos));
    kinds
}

/// Estimate drift against a committed baseline, embedded in the report
/// when `--audit-baseline` was given.
#[derive(Debug, Clone)]
pub struct Drift {
    pub baseline_corpus_median: f64,
    pub baseline_corpus_max: f64,
    /// `current − baseline` corpus-median q-error (positive = worse).
    pub median_delta: f64,
    /// The baseline's `quick` flag differed from this run's — latency
    /// and cardinalities aren't comparable like-for-like, so the gate
    /// note says so.
    pub mode_mismatch: bool,
}

impl Drift {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("baseline_corpus_median_q_error", Json::Float(self.baseline_corpus_median)),
            ("baseline_corpus_max_q_error", Json::Float(self.baseline_corpus_max)),
            ("median_delta", Json::Float(self.median_delta)),
            ("mode_mismatch", Json::Bool(self.mode_mismatch)),
        ])
    }
}

/// The full audit report (`BENCH_audit.json`).
#[derive(Debug, Clone)]
pub struct AuditReport {
    pub quick: bool,
    pub queries: Vec<QueryAudit>,
    pub kinds: Vec<KindAudit>,
    /// Median of the per-query median q-errors — the one number the
    /// drift gate watches.
    pub corpus_median_q_error: f64,
    pub corpus_max_q_error: f64,
    pub host: HostMeta,
    pub drift: Option<Drift>,
}

/// Run the audit over the canonical regression corpus: each case
/// executes once under the profiler with q-error auditing enabled (the
/// previous audit setting is restored afterwards, so tests and
/// embedders keep their configuration).
pub fn run(quick: bool) -> AuditReport {
    let (mut travel_db, mut company_db, cases) = regress::suite(quick);
    let prev = monoid_algebra::set_audit_enabled(true);
    let mut queries = Vec::with_capacity(cases.len());
    for case in cases {
        let db = match case.store {
            "travel" => &mut travel_db,
            _ => &mut company_db,
        };
        let analysis =
            monoid_algebra::explain_analyze(&case.expr, db).expect("audit case executes");
        queries.push(QueryAudit::from_profile(case.name, case.store, &case.source, &analysis.profile));
    }
    monoid_algebra::set_audit_enabled(prev);
    from_queries(quick, queries)
}

/// Assemble a report from already-audited queries (what [`run`] and the
/// tests share).
pub fn from_queries(quick: bool, queries: Vec<QueryAudit>) -> AuditReport {
    let kinds = aggregate_kinds(queries.iter().flat_map(|q| q.operators.iter()));
    let mut medians: Vec<f64> = queries.iter().map(|q| q.median_q_error).collect();
    let corpus_median_q_error = lower_median(&mut medians);
    let corpus_max_q_error =
        queries.iter().map(|q| q.max_q_error).fold(1.0, f64::max);
    AuditReport {
        quick,
        queries,
        kinds,
        corpus_median_q_error,
        corpus_max_q_error,
        host: host_meta(),
        drift: None,
    }
}

impl AuditReport {
    /// Annotate the report with drift against a committed baseline
    /// document (a previous `BENCH_audit.json`). A baseline that isn't
    /// an audit report leaves `drift` unset.
    pub fn with_drift(mut self, baseline: &Json) -> AuditReport {
        let corpus = baseline.get("corpus");
        let Some(base_median) =
            corpus.and_then(|c| c.get("median_q_error")).and_then(Json::as_f64)
        else {
            return self;
        };
        let base_max = corpus
            .and_then(|c| c.get("max_q_error"))
            .and_then(Json::as_f64)
            .unwrap_or(base_median);
        let base_quick = baseline.get("quick").and_then(Json::as_bool).unwrap_or(false);
        self.drift = Some(Drift {
            baseline_corpus_median: base_median,
            baseline_corpus_max: base_max,
            median_delta: self.corpus_median_q_error - base_median,
            mode_mismatch: base_quick != self.quick,
        });
        self
    }

    /// All queries' folded stacks, each line prefixed with the query
    /// name as its own root frame — one file flamegraphs the whole
    /// corpus, with one top-level tower per query.
    pub fn corpus_folded(&self) -> String {
        let mut out = String::new();
        for q in &self.queries {
            for line in q.folded.lines() {
                out.push_str(&q.name.replace(';', ","));
                out.push(';');
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// The `BENCH_audit.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::str("audit")),
            ("schema_version", Json::Int(AUDIT_SCHEMA_VERSION)),
            ("host", self.host.to_json()),
            ("quick", Json::Bool(self.quick)),
            (
                "corpus",
                Json::obj(vec![
                    ("queries", Json::from(self.queries.len())),
                    ("median_q_error", Json::Float(self.corpus_median_q_error)),
                    ("max_q_error", Json::Float(self.corpus_max_q_error)),
                ]),
            ),
            ("queries", Json::Arr(self.queries.iter().map(QueryAudit::to_json).collect())),
            ("kinds", Json::Arr(self.kinds.iter().map(KindAudit::to_json).collect())),
            (
                "drift",
                self.drift.as_ref().map(Drift::to_json).unwrap_or(Json::Null),
            ),
        ])
    }

    /// Render the human audit screen: per-query headline numbers, then
    /// the per-kind overhead table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan-quality audit ({} queries, {}): corpus q-error median {:.2}, max {:.2}\n",
            self.queries.len(),
            if self.quick { "quick" } else { "full" },
            self.corpus_median_q_error,
            self.corpus_max_q_error,
        ));
        if let Some(d) = &self.drift {
            out.push_str(&format!(
                "vs baseline: median {:.2} → {:.2} ({:+.2}){}\n",
                d.baseline_corpus_median,
                self.corpus_median_q_error,
                d.median_delta,
                if d.mode_mismatch { " [mode mismatch: quick vs full]" } else { "" },
            ));
        }
        out.push('\n');
        let mut queries = Table::new(&["query", "rows", "q-med", "q-max", "worst operator"]);
        for q in &self.queries {
            queries.row(&[
                q.name.clone(),
                q.rows_to_reduce.to_string(),
                format!("{:.2}", q.median_q_error),
                format!("{:.2}", q.max_q_error),
                q.worst_operator.clone(),
            ]);
        }
        out.push_str(&queries.render());
        out.push('\n');
        out.push_str(&render_kind_table(&self.kinds));
        out
    }
}

/// The per-kind overhead table ([`AuditReport::render`] and
/// `oqltop --audit` share it).
pub fn render_kind_table(kinds: &[KindAudit]) -> String {
    let mut table = Table::new(&[
        "kind", "ops", "rows", "q-med", "q-max", "self", "ns/row", "steps/row", "allocs/row",
    ]);
    for k in kinds {
        table.row(&[
            k.kind.clone(),
            k.operators.to_string(),
            k.rows.to_string(),
            format!("{:.2}", k.median_q_error),
            format!("{:.2}", k.max_q_error),
            fmt_nanos(u128::from(k.self_nanos)),
            format!("{:.1}", k.nanos_per_row()),
            format!("{:.1}", k.steps_per_row()),
            format!("{:.2}", k.allocs_per_row()),
        ]);
    }
    table.render()
}

/// Render the registry's corpus-wide q-error account — the
/// `plan_q_error_milli{operator=…}` histogram family fed by audited
/// profiled runs. Empty string when the family has no series (auditing
/// never ran).
pub fn render_registry_audit(snapshot: &Snapshot) -> String {
    let mut table = Table::new(&["operator", "samples", "q-p50", "q-p95", "q-mean"]);
    let mut rows = 0;
    for s in &snapshot.series {
        if s.key.name != "plan_q_error_milli" {
            continue;
        }
        let MetricValue::Histogram(h) = &s.value else { continue };
        if h.count == 0 {
            continue;
        }
        let operator = s
            .key
            .labels
            .iter()
            .find(|(k, _)| k == "operator")
            .map_or("?", |(_, v)| v.as_str());
        let q = |p: f64| {
            h.quantile(p).map_or("-".to_string(), |milli| format!("{:.2}", milli as f64 / 1000.0))
        };
        table.row(&[
            operator.to_string(),
            h.count.to_string(),
            q(0.5),
            q(0.95),
            format!("{:.2}", h.sum as f64 / h.count as f64 / 1000.0),
        ]);
        rows += 1;
    }
    if rows == 0 {
        return String::new();
    }
    format!("registry q-error by operator kind (milli-q histograms):\n{}", table.render())
}

/// The gate's verdict: informational notes plus hard regressions (any
/// regression → the `regress` binary exits 1).
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    pub notes: Vec<String>,
    pub regressions: Vec<String>,
}

/// Gate a fresh audit against a committed baseline: the corpus-median
/// q-error may not grow more than `tolerance_pct` percent *and* more
/// than [`AUDIT_NOISE_FLOOR_Q`] absolute q-units. A baseline that isn't
/// an audit report is an `Err` (a broken gate should fail loudly, not
/// pass silently).
pub fn gate(current: &AuditReport, baseline: &Json, tolerance_pct: f64) -> Result<GateOutcome, String> {
    let base_median = baseline
        .get("corpus")
        .and_then(|c| c.get("median_q_error"))
        .and_then(Json::as_f64)
        .ok_or("audit baseline has no corpus.median_q_error")?;
    if base_median < 1.0 {
        return Err(format!("audit baseline corpus median {base_median} is below 1.0 — not a q-error"));
    }
    let mut out = GateOutcome::default();
    let base_quick = baseline.get("quick").and_then(Json::as_bool).unwrap_or(false);
    if base_quick != current.quick {
        out.notes.push(format!(
            "audit baseline mode mismatch (baseline {}, current {}) — comparing anyway",
            if base_quick { "quick" } else { "full" },
            if current.quick { "quick" } else { "full" },
        ));
    }
    let cur = current.corpus_median_q_error;
    let allowed = base_median * (1.0 + tolerance_pct / 100.0);
    let delta = cur - base_median;
    if cur > allowed && delta > AUDIT_NOISE_FLOOR_Q {
        out.regressions.push(format!(
            "corpus-median q-error regressed: {base_median:.3} → {cur:.3} \
             (allowed ≤ {allowed:.3} at {tolerance_pct:.0}% tolerance)"
        ));
    } else {
        out.notes.push(format!(
            "corpus-median q-error {cur:.3} vs baseline {base_median:.3} — within tolerance"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_audit_produces_a_complete_report() {
        let report = run(true);
        assert_eq!(report.queries.len(), 6, "audit covers the regress corpus");
        assert!(report.corpus_median_q_error >= 1.0);
        assert!(report.corpus_max_q_error >= report.corpus_median_q_error);
        for q in &report.queries {
            assert!(!q.operators.is_empty(), "{} has operators", q.name);
            assert!(q.median_q_error >= 1.0 && q.max_q_error >= q.median_q_error, "{}", q.name);
            assert!(!q.worst_operator.is_empty(), "{}", q.name);
            // The folded stacks parse: every line is `frames value` with
            // at least the root and one operator frame, no empty frames.
            assert_eq!(q.folded.lines().count(), q.operators.len());
            for line in q.folded.lines() {
                let (stack, value) = line.rsplit_once(' ').expect("value separated by space");
                assert!(value.parse::<u64>().is_ok(), "numeric value: {line}");
                let frames: Vec<&str> = stack.split(';').collect();
                assert!(frames.len() >= 2, "root + operator: {line}");
                assert!(frames.iter().all(|f| !f.trim().is_empty()), "no empty frames: {line}");
                assert!(frames[0].starts_with("Reduce["), "reduction roots the stack: {line}");
            }
        }
        // Kinds aggregate over the corpus; scans exist and pushed rows.
        let scan = report.kinds.iter().find(|k| k.kind == "scan").expect("corpus scans");
        assert!(scan.operators > 0 && scan.rows > 0);
        assert!(scan.median_q_error >= 1.0);
        // The JSON document carries the acceptance fields.
        let json = report.to_json().render();
        for key in [
            "\"bench\"",
            "\"corpus\"",
            "\"median_q_error\"",
            "\"max_q_error\"",
            "\"worst_operator\"",
            "\"kinds\"",
            "\"nanos_per_row\"",
            "\"steps_per_row\"",
            "\"allocs_per_row\"",
            "\"q_error\"",
            "\"host\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // And the render shows the headline plus both tables.
        let text = report.render();
        assert!(text.contains("corpus q-error median"), "{text}");
        assert!(text.contains("ns/row"), "{text}");
    }

    #[test]
    fn corpus_folded_prefixes_query_roots() {
        let report = run(true);
        let folded = report.corpus_folded();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<u64>().is_ok(), "{line}");
            let mut frames = stack.split(';');
            let root = frames.next().unwrap();
            assert!(
                report.queries.iter().any(|q| q.name == root),
                "query name roots the corpus stack: {line}"
            );
            assert!(frames.next().is_some_and(|f| f.starts_with("Reduce[")), "{line}");
        }
    }

    #[test]
    fn audit_gate_passes_within_tolerance_and_fails_beyond() {
        let current = run(true);
        // Gating a run against its own document always passes.
        let own = current.to_json();
        let outcome = gate(&current, &own, DEFAULT_AUDIT_TOLERANCE_PCT).unwrap();
        assert!(outcome.regressions.is_empty(), "{:?}", outcome.regressions);
        // A baseline far below the current median fails the gate (the
        // delta also clears the noise floor).
        let tight = Json::obj(vec![
            ("quick", Json::Bool(true)),
            ("corpus", Json::obj(vec![("median_q_error", Json::Float(1.0))])),
        ]);
        if current.corpus_median_q_error > 1.0 + AUDIT_NOISE_FLOOR_Q {
            let outcome = gate(&current, &tight, 0.0).unwrap();
            assert!(!outcome.regressions.is_empty());
        }
        // An absurdly high baseline passes even at 0% tolerance.
        let loose = Json::obj(vec![
            ("quick", Json::Bool(true)),
            ("corpus", Json::obj(vec![("median_q_error", Json::Float(1e9))])),
        ]);
        let outcome = gate(&current, &loose, 0.0).unwrap();
        assert!(outcome.regressions.is_empty());
        // A mode mismatch is a note, not a failure.
        let full_mode = Json::obj(vec![
            ("quick", Json::Bool(false)),
            (
                "corpus",
                Json::obj(vec![(
                    "median_q_error",
                    Json::Float(current.corpus_median_q_error),
                )]),
            ),
        ]);
        let outcome = gate(&current, &full_mode, DEFAULT_AUDIT_TOLERANCE_PCT).unwrap();
        assert!(outcome.regressions.is_empty());
        assert!(outcome.notes.iter().any(|n| n.contains("mode mismatch")), "{:?}", outcome.notes);
        // Garbage baselines are loud errors.
        assert!(gate(&current, &Json::obj(vec![]), 50.0).is_err());
        // Drift annotation lands in the JSON.
        let annotated = run(true).with_drift(&own);
        let d = annotated.drift.as_ref().expect("baseline parsed");
        assert!(!d.mode_mismatch);
        let json = annotated.to_json().render();
        assert!(json.contains("\"median_delta\""), "{json}");
    }

    #[test]
    fn old_profiles_audit_and_fold_leniently() {
        // A pre-audit-era profile JSON: no kind, no q_error, no
        // eval_steps/heap_allocs on the operators.
        let profile = Json::obj(vec![
            ("monoid", Json::str("bag")),
            (
                "operators",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("op", Json::Int(0)),
                        ("operator", Json::str("Unnest h ← c.hotels")),
                        ("depth", Json::Int(0)),
                        ("estimated_rows", Json::Float(8.0)),
                        ("actual_rows", Json::Int(2)),
                        ("self_nanos", Json::Int(500)),
                    ]),
                    Json::obj(vec![
                        ("op", Json::Int(1)),
                        ("operator", Json::str("Scan c ← Cities")),
                        ("depth", Json::Int(1)),
                        ("estimated_rows", Json::Float(3.0)),
                        ("actual_rows", Json::Int(3)),
                    ]),
                ]),
            ),
        ]);
        let ops = operators_from_profile_json(&profile);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, "unnest", "kind derived from the label");
        assert_eq!(ops[1].kind, "scan");
        assert!((ops[0].q_error - 4.0).abs() < 1e-9, "q-error recomputed: {}", ops[0].q_error);
        assert!((ops[1].q_error - 1.0).abs() < 1e-9);
        assert_eq!(ops[1].self_nanos, 0, "missing field defaults");
        assert!((ops[0].nanos_per_row() - 250.0).abs() < 1e-9);
        let folded = folded_from_profile_json("slow-query", &profile);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines[0], "slow-query;Unnest h ← c.hotels 500");
        assert_eq!(lines[1], "slow-query;Unnest h ← c.hotels;Scan c ← Cities 0");
        // Kind aggregation over the lenient rows.
        let kinds = aggregate_kinds(ops.iter());
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].kind, "unnest", "hottest kind first");
    }
}
