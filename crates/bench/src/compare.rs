//! The bench regression gate: diff a fresh [`crate::regress`] report
//! against a committed baseline (`BENCH_regress.json`) and decide
//! whether the perf trajectory regressed.
//!
//! Comparison is per-query by name over the stable latency fields —
//! `median_nanos` and `p95_nanos` in the queries section,
//! `warm_median_nanos` in the prepared section. A case regresses when
//! the fresh number exceeds the baseline by more than the relative
//! tolerance **and** by more than an absolute noise floor
//! ([`DEFAULT_MIN_DELTA_NANOS`] unless overridden) — without the floor,
//! a 5 µs query failing a 50 % tolerance by 3 µs would gate the build
//! on scheduler jitter.
//!
//! The gate is shape-tolerant on purpose: CI compares a `--quick` run
//! against the committed full-mode baseline, which is conservative
//! (quick stores are smaller, so quick runs are faster — a genuine
//! regression has to overcome that headroom before it trips). Differing
//! modes are reported as [`CompareReport::mode_mismatch`], not an
//! error; missing or extra cases are listed, not fatal.

use monoid_calculus::json::Json;
use std::fmt::Write as _;

/// Default absolute noise floor: a latency increase below this many
/// nanos never counts as a regression regardless of its relative size.
/// Sub-millisecond queries routinely spike hundreds of µs at p95 (cold
/// caches, scheduler preemption), so the default floor sits above that
/// band; override with the binary's `--min-delta`.
pub const DEFAULT_MIN_DELTA_NANOS: f64 = 1_000_000.0;

/// Tolerance the `regress` binary defaults to when `--tolerance` is not
/// given: generous, because CI runners are noisy neighbors.
pub const DEFAULT_TOLERANCE_PCT: f64 = 50.0;

/// One compared metric of one case.
#[derive(Debug, Clone)]
pub struct CompareCase {
    /// `<section>/<case name>`, e.g. `queries/portland-flat`.
    pub name: String,
    /// The compared field, e.g. `median_nanos`.
    pub metric: &'static str,
    pub baseline_nanos: f64,
    pub current_nanos: f64,
    /// `current ÷ baseline` (1.0 = unchanged).
    pub ratio: f64,
}

/// The gate's verdict: what was compared, what regressed, what improved,
/// and what could not be matched up.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    pub tolerance_pct: f64,
    pub min_delta_nanos: f64,
    /// Metrics successfully compared (both sides present).
    pub compared: usize,
    /// Cases beyond tolerance + noise floor, slower.
    pub regressions: Vec<CompareCase>,
    /// Cases beyond tolerance + noise floor, faster.
    pub improvements: Vec<CompareCase>,
    /// Case names present in the baseline but absent from the fresh run.
    pub missing_in_current: Vec<String>,
    /// Case names present in the fresh run but absent from the baseline.
    pub only_in_current: Vec<String>,
    /// The two reports ran in different modes (`quick` flags differ), so
    /// absolute numbers are not like-for-like. Informational.
    pub mode_mismatch: bool,
}

impl CompareReport {
    /// The gate passes iff nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "regression gate: {} metrics compared, tolerance {}% (+{} µs noise floor)",
            self.compared,
            self.tolerance_pct,
            self.min_delta_nanos / 1_000.0,
        );
        if self.mode_mismatch {
            let _ = writeln!(
                out,
                "note: quick/full mode differs from the baseline — absolute numbers are not like-for-like"
            );
        }
        for c in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION  {} {}: {} → {} ({:.2}x)",
                c.name,
                c.metric,
                crate::harness::fmt_nanos(c.baseline_nanos as u128),
                crate::harness::fmt_nanos(c.current_nanos as u128),
                c.ratio,
            );
        }
        for c in &self.improvements {
            let _ = writeln!(
                out,
                "improvement {} {}: {} → {} ({:.2}x)",
                c.name,
                c.metric,
                crate::harness::fmt_nanos(c.baseline_nanos as u128),
                crate::harness::fmt_nanos(c.current_nanos as u128),
                c.ratio,
            );
        }
        for name in &self.missing_in_current {
            let _ = writeln!(out, "missing in current run: {name}");
        }
        for name in &self.only_in_current {
            let _ = writeln!(out, "new (no baseline): {name}");
        }
        let _ = writeln!(out, "verdict: {}", if self.passed() { "PASS" } else { "FAIL" });
        out
    }
}

/// The compared sections and their latency fields: per-query end-to-end
/// medians and tails, the prepared warm path (the serving-layer number
/// `docs/serving.md` optimizes for), and the fused sequential median of
/// the scan-heavy parallel cases (the single-thread fast path the fused
/// engine owns — a regression there means the fold itself got slower).
/// Cold prepared numbers and the parallel thread ladder are deliberately
/// not gated — they measure the host (compiler, core count) more than
/// the code.
const SECTIONS: [(&str, &[&str]); 4] = [
    ("queries", &["median_nanos", "p95_nanos"]),
    ("prepared", &["warm_median_nanos"]),
    ("parallel", &["fused_median_nanos"]),
    // The wire server's single-client warm round trip (schema v6). The
    // throughput ladder is deliberately not gated — queries/second at 64
    // clients measures the host's core count more than the code.
    ("serving", &["warm_nanos_per_query"]),
];

/// Compare a fresh report against a baseline, both in their
/// `RegressReport::to_json` form. A case regresses (or improves) only
/// when it moves beyond both the relative `tolerance_pct` and the
/// absolute `min_delta_nanos` floor. Errors only on documents that are
/// not regress reports at all (missing sections).
pub fn compare_reports(
    current: &Json,
    baseline: &Json,
    tolerance_pct: f64,
    min_delta_nanos: f64,
) -> Result<CompareReport, String> {
    let mut report =
        CompareReport { tolerance_pct, min_delta_nanos, ..CompareReport::default() };
    report.mode_mismatch = current.get("quick").and_then(Json::as_bool)
        != baseline.get("quick").and_then(Json::as_bool);
    let threshold = 1.0 + tolerance_pct / 100.0;

    for (section, metrics) in SECTIONS {
        let cur = cases_of(current, section)?;
        // A baseline from an older schema may predate a section (e.g.
        // `serving`, added in v6). Treat it as empty — every current
        // case lands in `only_in_current` — instead of failing the gate
        // on a report the old code can no longer regenerate. The fresh
        // report gets no such grace: a section the current binary should
        // have produced but didn't is a malformed report.
        let base = cases_of(baseline, section).unwrap_or_default();
        for (name, base_case) in &base {
            let Some(cur_case) = cur.iter().find(|(n, _)| n == name).map(|(_, c)| c) else {
                report.missing_in_current.push(format!("{section}/{name}"));
                continue;
            };
            for metric in metrics {
                let (Some(b), Some(c)) = (
                    base_case.get(metric).and_then(Json::as_f64),
                    cur_case.get(metric).and_then(Json::as_f64),
                ) else {
                    continue;
                };
                report.compared += 1;
                let case = CompareCase {
                    name: format!("{section}/{name}"),
                    metric,
                    baseline_nanos: b,
                    current_nanos: c,
                    ratio: if b > 0.0 { c / b } else { f64::INFINITY },
                };
                if c > b * threshold && c - b >= min_delta_nanos {
                    report.regressions.push(case);
                } else if b > c * threshold && b - c >= min_delta_nanos {
                    report.improvements.push(case);
                }
            }
        }
        for (name, _) in &cur {
            if !base.iter().any(|(n, _)| n == name) {
                report.only_in_current.push(format!("{section}/{name}"));
            }
        }
    }
    Ok(report)
}

/// The `(name, case object)` pairs of one report section.
fn cases_of<'a>(report: &'a Json, section: &str) -> Result<Vec<(String, &'a Json)>, String> {
    let arr = report
        .get(section)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("not a regress report: no `{section}` array"))?;
    Ok(arr
        .iter()
        .filter_map(|c| c.get("name").and_then(Json::as_str).map(|n| (n.to_string(), c)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(median: u64, warm: u64, quick: bool) -> Json {
        Json::obj(vec![
            ("quick", Json::Bool(quick)),
            (
                "queries",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("q1")),
                    ("median_nanos", Json::from(median)),
                    ("p95_nanos", Json::from(median * 2)),
                ])]),
            ),
            (
                "prepared",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("p1")),
                    ("warm_median_nanos", Json::from(warm)),
                ])]),
            ),
            (
                "parallel",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("par1")),
                    ("fused_median_nanos", Json::from(median)),
                ])]),
            ),
            (
                "serving",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("s1")),
                    ("warm_nanos_per_query", Json::from(warm)),
                ])]),
            ),
        ])
    }

    #[test]
    fn self_compare_passes() {
        let r = report(1_000_000, 500_000, false);
        let c = compare_reports(&r, &r, 50.0, 100_000.0).unwrap();
        assert!(c.passed());
        assert_eq!(c.compared, 5);
        assert!(!c.mode_mismatch);
        assert!(c.improvements.is_empty());
        assert!(c.render().contains("PASS"), "{}", c.render());
    }

    #[test]
    fn large_slowdowns_regress_and_large_speedups_improve() {
        let base = report(1_000_000, 500_000, false);
        let slow = report(10_000_000, 5_000_000, false);
        let c = compare_reports(&slow, &base, 50.0, 100_000.0).unwrap();
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 5, "{:?}", c.regressions);
        assert!(c.render().contains("REGRESSION"), "{}", c.render());
        // The mirror image is an improvement, and still a pass.
        let c = compare_reports(&base, &slow, 50.0, 100_000.0).unwrap();
        assert!(c.passed());
        assert_eq!(c.improvements.len(), 5);
    }

    #[test]
    fn tolerance_and_noise_floor_absorb_jitter() {
        let base = report(1_000_000, 500_000, false);
        // 10% worse: inside a 50% tolerance.
        let c = compare_reports(&report(1_100_000, 550_000, false), &base, 50.0, 100_000.0).unwrap();
        assert!(c.passed(), "{:?}", c.regressions);
        // Tiny absolute values: 10x worse but under the noise floor.
        let small = report(1_000, 500, false);
        let c = compare_reports(&report(10_000, 5_000, false), &small, 50.0, 100_000.0).unwrap();
        assert!(c.passed(), "{:?}", c.regressions);
    }

    #[test]
    fn mode_mismatch_is_noted_not_fatal() {
        let c = compare_reports(&report(1, 1, true), &report(1, 1, false), 50.0, 100_000.0).unwrap();
        assert!(c.mode_mismatch);
        assert!(c.passed());
        assert!(c.render().contains("mode differs"), "{}", c.render());
    }

    #[test]
    fn unmatched_cases_are_listed() {
        let base = report(1_000_000, 500_000, false);
        let mut renamed = report(1_000_000, 500_000, false);
        if let Json::Obj(fields) = &mut renamed {
            fields[1].1 = Json::Arr(vec![Json::obj(vec![
                ("name", Json::str("q2")),
                ("median_nanos", Json::from(1_000_000u64)),
            ])]);
        }
        let c = compare_reports(&renamed, &base, 50.0, 100_000.0).unwrap();
        assert_eq!(c.missing_in_current, vec!["queries/q1"]);
        assert_eq!(c.only_in_current, vec!["queries/q2"]);
        assert!(c.passed(), "unmatched cases alone do not fail the gate");
    }

    #[test]
    fn non_reports_error() {
        assert!(compare_reports(&Json::Null, &Json::Null, 50.0, 100_000.0).is_err());
        let no_prepared = Json::obj(vec![("queries", Json::Arr(vec![]))]);
        assert!(compare_reports(&no_prepared, &no_prepared, 50.0, 100_000.0).is_err());
    }

    #[test]
    fn baseline_missing_a_section_is_lenient_current_is_not() {
        // An old baseline without the v6 `serving` section still gates:
        // the serving cases just have no baseline to compare against.
        let current = report(1_000_000, 500_000, false);
        let mut old = report(1_000_000, 500_000, false);
        if let Json::Obj(fields) = &mut old {
            fields.retain(|(k, _)| k != "serving");
        }
        let c = compare_reports(&current, &old, 50.0, 100_000.0).unwrap();
        assert!(c.passed());
        assert_eq!(c.compared, 4, "serving skipped, everything else gated");
        assert_eq!(c.only_in_current, vec!["serving/s1"]);
        // The other direction is a malformed *current* report: error.
        assert!(compare_reports(&old, &current, 50.0, 100_000.0).is_err());
    }
}
