//! The benchmark and experiment queries, as calculus builders and OQL
//! sources, shared by the Criterion benches and the `experiments` binary.

use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;

/// The paper's §3.1 query in its *nested* OQL form (a subquery in `from`),
/// which exercises the normalizer's unnesting rules.
pub const PORTLAND_NESTED_OQL: &str = "\
select h.name \
from h in (select h2 from c in Cities, h2 in c.hotels \
           where c.name = 'Portland'), \
     r in h.rooms \
where r.bed# = 3";

/// The same query in the flat form the paper derives.
pub const PORTLAND_FLAT_OQL: &str = "\
select h.name from c in Cities, h in c.hotels, r in h.rooms \
where c.name = 'Portland' and r.bed# = 3";

/// B1: the correlated-exists query. Clients who prefer a city that exists:
/// `set{ cl.name | cl ← Clients, p ← cl.preferred, some{ c.name = p | c ← Cities } }`.
///
/// Evaluated as written, the existential rescans `Cities` per
/// (client, preference) pair — `O(clients · cities)`. After normalization
/// (rule N6) the exists becomes a generator plus an equality predicate,
/// which the planner turns into a hash join — `O(clients + cities)`.
pub fn clients_preferring_existing_city() -> Expr {
    Expr::comp(
        Monoid::Set,
        Expr::var("cl").proj("name"),
        vec![
            Expr::gen("cl", Expr::var("Clients")),
            Expr::gen("p", Expr::var("cl").proj("preferred")),
            Expr::pred(Expr::comp(
                Monoid::Some,
                Expr::var("c").proj("name").eq(Expr::var("p")),
                vec![Expr::gen("c", Expr::var("Cities"))],
            )),
        ],
    )
}

/// B2: a deep navigation chain written with *nested subqueries in from* —
/// each level materializes an intermediate bag when evaluated directly.
pub fn deep_navigation_nested(price_limit: i64) -> Expr {
    let level1 = Expr::comp(
        Monoid::Bag,
        Expr::var("h"),
        vec![
            Expr::gen("c", Expr::var("Cities")),
            Expr::gen("h", Expr::var("c").proj("hotels")),
        ],
    );
    let level2 = Expr::comp(
        Monoid::Bag,
        Expr::var("r"),
        vec![Expr::gen("h", level1), Expr::gen("r", Expr::var("h").proj("rooms"))],
    );
    Expr::comp(
        Monoid::Bag,
        Expr::var("r").proj("price"),
        vec![
            Expr::gen("r", level2),
            Expr::pred(Expr::var("r").proj("price").lt(Expr::int(price_limit))),
        ],
    )
}

/// B3: the paper's mixed-collection join, scaled: a list joined with a bag
/// into a set — `set{ (a, b) | a ← xs(list), b ← ys(bag), a = b.k }`.
pub fn mixed_join(n_list: usize, n_bag: usize) -> Expr {
    let xs = Expr::CollLit(
        Monoid::List,
        (0..n_list as i64).map(Expr::int).collect(),
    );
    let ys = Expr::CollLit(
        Monoid::Bag,
        (0..n_bag as i64)
            .map(|i| Expr::record(vec![("k", Expr::int(i % 64)), ("v", Expr::int(i))]))
            .collect(),
    );
    Expr::comp(
        Monoid::Set,
        Expr::Tuple(vec![Expr::var("a"), Expr::var("b").proj("v")]),
        vec![
            Expr::gen("a", xs),
            Expr::gen("b", ys),
            Expr::pred(Expr::var("a").eq(Expr::var("b").proj("k"))),
        ],
    )
}

/// B5 / §4.3: the paper's update program — insert a hotel into a city and
/// bump its `hotel#` counter, as a comprehension over the extent:
///
/// ```text
/// all{ c := ⟨…, hotels = c.hotels ++ [h], hotel# = c.hotel# + 1⟩
///    | c ← Cities, c.name = city, h ← new(⟨…⟩) }
/// ```
pub fn insert_hotel_update(city: &str, hotel_name: &str) -> Expr {
    let new_hotel = Expr::new_obj(Expr::record(vec![
        ("name", Expr::str(hotel_name)),
        ("address", Expr::str("1 New St")),
        ("facilities", Expr::set_of(vec![])),
        ("employees", Expr::list_of(vec![])),
        ("rooms", Expr::list_of(vec![])),
    ]));
    Expr::comp(
        Monoid::All,
        Expr::var("c").assign(Expr::record(vec![
            ("name", Expr::var("c").proj("name")),
            (
                "hotels",
                Expr::merge(
                    Monoid::List,
                    Expr::var("c").proj("hotels"),
                    Expr::CollLit(Monoid::List, vec![Expr::var("h")]),
                ),
            ),
            ("hotel#", Expr::var("c").proj("hotel#").add(Expr::int(1))),
        ])),
        vec![
            Expr::gen("c", Expr::var("Cities")),
            Expr::pred(Expr::var("c").proj("name").eq(Expr::str(city))),
            Expr::gen("h", new_hotel),
        ],
    )
}

/// B5 bulk variant: give every employee a raise through the calculus.
pub fn raise_salaries(amount: i64) -> Expr {
    Expr::comp(
        Monoid::All,
        Expr::var("e").assign(Expr::record(vec![
            ("name", Expr::var("e").proj("name")),
            ("salary", Expr::var("e").proj("salary").add(Expr::int(amount))),
        ])),
        vec![Expr::gen("e", Expr::var("Employees"))],
    )
}

/// B6: an equi-join between two independent extents — employees to
/// clients on (salary mod k) = (age mod k)-style synthetic keys, where `k`
/// controls selectivity.
pub fn employee_client_join(k: i64) -> Expr {
    Expr::comp(
        Monoid::Sum,
        Expr::int(1),
        vec![
            Expr::gen("e", Expr::var("Employees")),
            Expr::gen("cl", Expr::var("Clients")),
            Expr::pred(
                Expr::binop(
                    monoid_calculus::expr::BinOp::Mod,
                    Expr::var("e").proj("salary"),
                    Expr::int(k),
                )
                .eq(Expr::binop(
                    monoid_calculus::expr::BinOp::Mod,
                    Expr::var("cl").proj("age"),
                    Expr::int(k),
                )),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::normalize::normalize;
    use monoid_store::travel::{self, TravelScale};

    #[test]
    fn b1_normalizes_to_a_joinable_form() {
        let q = clients_preferring_existing_city();
        let n = normalize(&q);
        // The exists must be gone: three generators, one predicate.
        let monoid_calculus::expr::Expr::Comp { quals, .. } = &n else { panic!() };
        assert_eq!(quals.len(), 4);
        let plan = monoid_algebra::plan_comprehension(&n).unwrap();
        assert!(plan.plan.uses_hash_join(), "{}", monoid_algebra::explain(&plan));
    }

    #[test]
    fn b1_all_three_strategies_agree() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let q = clients_preferring_existing_city();
        let naive = db.query(&q).unwrap();
        let n = normalize(&q);
        let flat = db.query(&n).unwrap();
        let plan = monoid_algebra::plan_comprehension(&n).unwrap();
        let piped = monoid_algebra::execute(&plan, &mut db).unwrap();
        assert_eq!(naive, flat);
        assert_eq!(naive, piped);
    }

    #[test]
    fn b2_nested_equals_normalized() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let q = deep_navigation_nested(200);
        let naive = db.query(&q).unwrap();
        let n = normalize(&q);
        let flat = db.query(&n).unwrap();
        assert_eq!(naive, flat);
        // Normalized: a single flat comprehension.
        let monoid_calculus::expr::Expr::Comp { quals, .. } = &n else { panic!() };
        assert_eq!(quals.len(), 4);
    }

    #[test]
    fn b3_mixed_join_evaluates() {
        let q = mixed_join(100, 100);
        let v = monoid_calculus::eval::eval_closed(&q).unwrap();
        assert!(v.len().unwrap() > 0);
        let n = normalize(&q);
        assert_eq!(monoid_calculus::eval::eval_closed(&n).unwrap(), v);
    }

    #[test]
    fn update_program_inserts_hotel() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let before = db
            .query(&Expr::comp(
                Monoid::Sum,
                Expr::var("c").proj("hotel#"),
                vec![Expr::gen("c", Expr::var("Cities"))],
            ))
            .unwrap();
        let upd = insert_hotel_update("Portland", "hotel_new");
        assert_eq!(
            db.query(&upd).unwrap(),
            monoid_calculus::value::Value::Bool(true)
        );
        let after = db
            .query(&Expr::comp(
                Monoid::Sum,
                Expr::var("c").proj("hotel#"),
                vec![Expr::gen("c", Expr::var("Cities"))],
            ))
            .unwrap();
        use monoid_calculus::value::Value;
        let (Value::Int(b), Value::Int(a)) = (before, after) else { panic!() };
        assert_eq!(a, b + 1);
        // The new hotel is reachable through the city.
        let names = db
            .query(
                &monoid_oql::compile(
                    &travel::schema(),
                    "select h.name from c in Cities, h in c.hotels \
                     where c.name = 'Portland'",
                )
                .unwrap(),
            )
            .unwrap();
        assert!(names
            .elements()
            .unwrap()
            .contains(&Value::str("hotel_new")));
    }

    #[test]
    fn raise_salaries_updates_every_employee() {
        let mut db = travel::generate(TravelScale::tiny(), 5);
        let total = |db: &mut monoid_store::Database| {
            db.query(&Expr::comp(
                Monoid::Sum,
                Expr::var("e").proj("salary"),
                vec![Expr::gen("e", Expr::var("Employees"))],
            ))
            .unwrap()
        };
        let before = total(&mut db);
        db.query(&raise_salaries(1000)).unwrap();
        let after = total(&mut db);
        use monoid_calculus::value::Value;
        let (Value::Int(b), Value::Int(a)) = (before, after) else { panic!() };
        let n = db.extent_len("Employees") as i64;
        assert_eq!(a, b + 1000 * n);
    }
}
