//! Aggregation behind the `oqltop` binary: fold a set of flight-recorder
//! [`QueryRecord`]s — a live [`monoid_calculus::recorder::global`]
//! snapshot or a dumped journal — into per-statement statistics (count,
//! latency percentiles, cache hit ratio, rows) plus fleet-wide totals
//! (phase breakdown, fallback reasons, error and slow counts).
//!
//! Records group by [`QueryRecord::fingerprint`], not source text: the
//! ring truncates long sources, but the fingerprint always covers the
//! whole statement, so repeated executions of one query aggregate under
//! one key regardless of length.

use crate::harness::{fmt_nanos, percentile_nanos, Table};
use monoid_calculus::json::Json;
use monoid_calculus::recorder::{CacheDisposition, QueryRecord, JOURNAL_SCHEMA_VERSION};
use monoid_calculus::trace::Phase;

/// Column the per-query table is ranked by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortBy {
    /// Cumulative wall-clock time — "where did the process spend it".
    #[default]
    Total,
    /// Tail latency — "which statement hurts interactively".
    P95,
}

impl SortBy {
    pub fn parse(s: &str) -> Option<SortBy> {
        match s {
            "total" => Some(SortBy::Total),
            "p95" => Some(SortBy::P95),
            _ => None,
        }
    }
}

/// Aggregated statistics for one statement (one fingerprint).
#[derive(Debug, Clone)]
pub struct QueryStats {
    pub fingerprint: u64,
    /// Truncated source of the most recent execution.
    pub source: String,
    pub count: u64,
    pub errors: u64,
    pub slow: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Rows produced by the most recent successful execution.
    pub last_rows: u64,
    pub total_nanos: u128,
    pub p50_nanos: u128,
    pub p95_nanos: u128,
    pub max_nanos: u128,
}

impl QueryStats {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fingerprint", Json::str(format!("{:016x}", self.fingerprint))),
            ("source", Json::str(self.source.clone())),
            ("count", Json::from(self.count)),
            ("errors", Json::from(self.errors)),
            ("slow", Json::from(self.slow)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("last_rows", Json::from(self.last_rows)),
            ("total_nanos", Json::from(self.total_nanos.min(u64::MAX as u128) as u64)),
            ("p50_nanos", Json::from(self.p50_nanos.min(u64::MAX as u128) as u64)),
            ("p95_nanos", Json::from(self.p95_nanos.min(u64::MAX as u128) as u64)),
            ("max_nanos", Json::from(self.max_nanos.min(u64::MAX as u128) as u64)),
        ])
    }
}

/// The full aggregation: fleet totals plus per-statement stats.
#[derive(Debug, Clone, Default)]
pub struct TopReport {
    pub records: u64,
    pub errors: u64,
    pub slow: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub uncached: u64,
    /// Nanos per lifecycle phase, summed over all records (indexed by
    /// [`Phase::index`]).
    pub phase_totals: [u128; Phase::ALL.len()],
    /// Parallel fallback reasons and how often each fired.
    pub fallbacks: Vec<(String, u64)>,
    pub queries: Vec<QueryStats>,
}

/// Aggregate a record set (snapshot or journal) into a [`TopReport`].
pub fn aggregate(records: &[QueryRecord]) -> TopReport {
    let mut report = TopReport::default();
    // fingerprint → (samples, stats), insertion-ordered so ties render
    // deterministically.
    let mut groups: Vec<(u64, Vec<u128>, QueryStats)> = Vec::new();
    for r in records {
        report.records += 1;
        if !r.ok() {
            report.errors += 1;
        }
        if r.slow {
            report.slow += 1;
        }
        match r.cache {
            CacheDisposition::Hit => report.cache_hits += 1,
            CacheDisposition::Miss => report.cache_misses += 1,
            CacheDisposition::Uncached => report.uncached += 1,
        }
        for phase in Phase::ALL {
            report.phase_totals[phase.index()] += u128::from(r.phase_nanos(phase));
        }
        if let Some(reason) = &r.parallel_fallback {
            match report.fallbacks.iter_mut().find(|(name, _)| name == reason) {
                Some((_, n)) => *n += 1,
                None => report.fallbacks.push((reason.clone(), 1)),
            }
        }
        let entry = match groups.iter_mut().find(|(fp, _, _)| *fp == r.fingerprint) {
            Some(entry) => entry,
            None => {
                groups.push((
                    r.fingerprint,
                    Vec::new(),
                    QueryStats {
                        fingerprint: r.fingerprint,
                        source: r.source.clone(),
                        count: 0,
                        errors: 0,
                        slow: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        last_rows: 0,
                        total_nanos: 0,
                        p50_nanos: 0,
                        p95_nanos: 0,
                        max_nanos: 0,
                    },
                ));
                groups.last_mut().expect("just pushed")
            }
        };
        let (_, samples, stats) = entry;
        samples.push(u128::from(r.total_nanos));
        stats.source = r.source.clone();
        stats.count += 1;
        if !r.ok() {
            stats.errors += 1;
        }
        if r.slow {
            stats.slow += 1;
        }
        match r.cache {
            CacheDisposition::Hit => stats.cache_hits += 1,
            CacheDisposition::Miss => stats.cache_misses += 1,
            CacheDisposition::Uncached => {}
        }
        if r.ok() {
            stats.last_rows = r.rows;
        }
        stats.total_nanos += u128::from(r.total_nanos);
    }
    report.queries = groups
        .into_iter()
        .map(|(_, samples, mut stats)| {
            stats.p50_nanos = percentile_nanos(&samples, 50.0);
            stats.p95_nanos = percentile_nanos(&samples, 95.0);
            stats.max_nanos = percentile_nanos(&samples, 100.0);
            stats
        })
        .collect();
    report
}

impl TopReport {
    /// Cache hit ratio over the records that went through a plan cache,
    /// or `None` when none did.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let cached = self.cache_hits + self.cache_misses;
        (cached > 0).then(|| self.cache_hits as f64 / cached as f64)
    }

    /// Render the `oqltop` screen: a totals header, the phase
    /// breakdown, and the top-`n` statements by `sort`.
    pub fn render(&self, n: usize, sort: SortBy) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} records ({} errors, {} slow) | cache: {} hits / {} misses / {} uncached",
            self.records, self.errors, self.slow, self.cache_hits, self.cache_misses,
            self.uncached,
        ));
        if let Some(ratio) = self.cache_hit_ratio() {
            out.push_str(&format!(" ({:.0}% hit)", ratio * 100.0));
        }
        out.push('\n');
        let phase_line: Vec<String> = Phase::ALL
            .iter()
            .filter(|p| self.phase_totals[p.index()] > 0)
            .map(|p| format!("{} {}", p.as_str(), fmt_nanos(self.phase_totals[p.index()])))
            .collect();
        if !phase_line.is_empty() {
            out.push_str(&format!("phases: {}\n", phase_line.join(" | ")));
        }
        for (reason, count) in &self.fallbacks {
            out.push_str(&format!("parallel fallback `{reason}`: {count}\n"));
        }
        out.push('\n');
        let mut ranked: Vec<&QueryStats> = self.queries.iter().collect();
        match sort {
            SortBy::Total => ranked.sort_by_key(|q| std::cmp::Reverse(q.total_nanos)),
            SortBy::P95 => ranked.sort_by_key(|q| std::cmp::Reverse(q.p95_nanos)),
        }
        let mut table =
            Table::new(&["#", "calls", "total", "p50", "p95", "max", "cache", "rows", "source"]);
        for (i, q) in ranked.iter().take(n).enumerate() {
            let cache = if q.cache_hits + q.cache_misses > 0 {
                format!("{}h/{}m", q.cache_hits, q.cache_misses)
            } else {
                "-".to_string()
            };
            let mut source: String = q.source.chars().take(48).collect();
            if q.source.chars().count() > 48 {
                source.push('…');
            }
            table.row(&[
                (i + 1).to_string(),
                format!("{}{}", q.count, if q.errors > 0 { "!" } else { "" }),
                fmt_nanos(q.total_nanos),
                fmt_nanos(q.p50_nanos),
                fmt_nanos(q.p95_nanos),
                fmt_nanos(q.max_nanos),
                cache,
                q.last_rows.to_string(),
                source.replace('\n', " "),
            ]);
        }
        out.push_str(&table.render());
        out
    }

    pub fn to_json(&self) -> Json {
        let phases = Json::Obj(
            Phase::ALL
                .iter()
                .map(|p| {
                    (
                        p.as_str().to_string(),
                        Json::from(self.phase_totals[p.index()].min(u64::MAX as u128) as u64),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("records", Json::from(self.records)),
            ("errors", Json::from(self.errors)),
            ("slow", Json::from(self.slow)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("uncached", Json::from(self.uncached)),
            ("phase_totals", phases),
            (
                "fallbacks",
                Json::Obj(
                    self.fallbacks
                        .iter()
                        .map(|(name, n)| (name.clone(), Json::from(*n)))
                        .collect(),
                ),
            ),
            (
                "queries",
                Json::Arr(self.queries.iter().map(QueryStats::to_json).collect()),
            ),
        ])
    }
}

/// Parse a journal dump back into records. Accepts both the
/// `FlightRecorder::to_json` document (`{"records": […]}`) and a bare
/// array of records. Strict: any record missing a field is an error.
/// `oqltop` itself goes through [`load_journal_lenient`] so journals
/// written by older builds keep loading.
pub fn load_journal(text: &str) -> Result<Vec<QueryRecord>, String> {
    let doc = Json::parse(text).map_err(|e| format!("journal is not JSON: {e}"))?;
    let arr = match &doc {
        Json::Arr(a) => a,
        _ => doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("journal has no `records` array")?,
    };
    arr.iter().map(QueryRecord::from_json).collect()
}

/// A journal loaded with schema tolerance: the records, the schema
/// version the file declared (1 when it predates the field), and any
/// warnings worth surfacing to the operator.
#[derive(Debug, Clone)]
pub struct Journal {
    pub records: Vec<QueryRecord>,
    /// The file's `schema_version`; journals written before the field
    /// existed count as version 1.
    pub schema_version: u64,
    /// Human-readable notes about version skew and defaulted fields —
    /// warnings, not errors, so old journals stay readable.
    pub warnings: Vec<String>,
}

/// [`load_journal`] with old-schema tolerance: a version mismatch or a
/// record missing fields produces a warning and defaults, not a load
/// failure. Still an error when the document isn't a journal at all
/// (not JSON, no `records` array, or a record that isn't an object).
pub fn load_journal_lenient(text: &str) -> Result<Journal, String> {
    let doc = Json::parse(text).map_err(|e| format!("journal is not JSON: {e}"))?;
    let (arr, declared) = match &doc {
        Json::Arr(a) => (a.as_slice(), None),
        _ => (
            doc.get("records")
                .and_then(Json::as_arr)
                .ok_or("journal has no `records` array")?,
            doc.get("schema_version").and_then(Json::as_u64),
        ),
    };
    let schema_version = declared.unwrap_or(1);
    let mut warnings = Vec::new();
    if schema_version != JOURNAL_SCHEMA_VERSION {
        warnings.push(format!(
            "journal declares schema version {schema_version}, this build writes \
             {JOURNAL_SCHEMA_VERSION}; missing fields default"
        ));
    }
    let mut records = Vec::with_capacity(arr.len());
    let mut defaulted = 0usize;
    for (i, j) in arr.iter().enumerate() {
        match QueryRecord::from_json(j) {
            Ok(r) => records.push(r),
            Err(_) => match QueryRecord::from_json_lenient(j) {
                Some(r) => {
                    defaulted += 1;
                    records.push(r);
                }
                None => return Err(format!("journal record {i} is not an object")),
            },
        }
    }
    if defaulted > 0 {
        warnings.push(format!("{defaulted} record(s) had missing fields defaulted"));
    }
    Ok(Journal { records, schema_version, warnings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: &str, total: u64, cache: CacheDisposition) -> QueryRecord {
        let mut r = QueryRecord::new(source);
        r.total_nanos = total;
        r.cache = cache;
        r.rows = 2;
        r.phase_nanos[Phase::Execute.index()] = total;
        r
    }

    #[test]
    fn aggregates_by_fingerprint() {
        let records = vec![
            record("q1", 1_000, CacheDisposition::Miss),
            record("q1", 3_000, CacheDisposition::Hit),
            record("q2", 2_000, CacheDisposition::Uncached),
        ];
        let top = aggregate(&records);
        assert_eq!(top.records, 3);
        assert_eq!(top.cache_hits, 1);
        assert_eq!(top.cache_misses, 1);
        assert_eq!(top.uncached, 1);
        assert_eq!(top.cache_hit_ratio(), Some(0.5));
        assert_eq!(top.phase_totals[Phase::Execute.index()], 6_000);
        assert_eq!(top.queries.len(), 2);
        let q1 = top.queries.iter().find(|q| q.source == "q1").unwrap();
        assert_eq!(q1.count, 2);
        assert_eq!(q1.total_nanos, 4_000);
        assert_eq!(q1.p50_nanos, 1_000);
        assert_eq!(q1.max_nanos, 3_000);
        assert_eq!(q1.last_rows, 2);
    }

    #[test]
    fn errors_fallbacks_and_slow_counts_surface() {
        let mut failed = record("q1", 500, CacheDisposition::Uncached);
        failed.error = Some("boom".to_string());
        let mut slow = record("q1", 9_000, CacheDisposition::Uncached);
        slow.slow = true;
        slow.parallel_fallback = Some("mutation".to_string());
        let top = aggregate(&[failed, slow]);
        assert_eq!(top.errors, 1);
        assert_eq!(top.slow, 1);
        assert_eq!(top.fallbacks, vec![("mutation".to_string(), 1)]);
        assert_eq!(top.cache_hit_ratio(), None);
        let rendered = top.render(10, SortBy::Total);
        assert!(rendered.contains("1 errors"), "{rendered}");
        assert!(rendered.contains("mutation"), "{rendered}");
    }

    #[test]
    fn render_ranks_by_requested_column() {
        // q-many: more cumulative time; q-spiky: worse p95.
        let mut records: Vec<QueryRecord> =
            (0..10).map(|_| record("q-many", 1_000_000, CacheDisposition::Uncached)).collect();
        records.push(record("q-spiky", 5_000_000, CacheDisposition::Uncached));
        let top = aggregate(&records);
        let by_total = top.render(1, SortBy::Total);
        assert!(by_total.contains("q-many"), "{by_total}");
        assert!(!by_total.contains("q-spiky"), "{by_total}");
        let by_p95 = top.render(1, SortBy::P95);
        assert!(by_p95.contains("q-spiky"), "{by_p95}");
    }

    #[test]
    fn journal_round_trips() {
        let records = vec![
            record("q1", 1_000, CacheDisposition::Miss),
            record("q2", 2_000, CacheDisposition::Hit),
        ];
        let doc = Json::obj(vec![(
            "records",
            Json::Arr(records.iter().map(QueryRecord::to_json).collect()),
        )]);
        let back = load_journal(&doc.render()).unwrap();
        assert_eq!(back, records);
        // Bare arrays load too.
        let bare = Json::Arr(records.iter().map(QueryRecord::to_json).collect());
        assert_eq!(load_journal(&bare.render()).unwrap(), records);
        // Non-journals are rejected.
        assert!(load_journal("{}").is_err());
        assert!(load_journal("not json").is_err());
    }

    #[test]
    fn old_journals_load_leniently_with_warnings() {
        // A version-1 journal (no schema_version) whose records predate
        // several fields: lenient load succeeds with defaults + warnings.
        let old = r#"{"records":[
            {"source":"legacy-q","total_nanos":1500,"rows":2},
            {"source":"legacy-q2"}
        ]}"#;
        // Strict loading rejects it…
        assert!(load_journal(old).is_err());
        // …lenient loading keeps what's there and defaults the rest.
        let journal = load_journal_lenient(old).unwrap();
        assert_eq!(journal.schema_version, 1);
        assert_eq!(journal.records.len(), 2);
        assert_eq!(journal.records[0].source, "legacy-q");
        assert_eq!(journal.records[0].total_nanos, 1500);
        assert_eq!(journal.records[0].rows, 2);
        assert_eq!(journal.records[1].total_nanos, 0, "missing field defaults");
        assert!(
            journal.warnings.iter().any(|w| w.contains("schema version 1")),
            "{:?}",
            journal.warnings
        );
        assert!(
            journal.warnings.iter().any(|w| w.contains("defaulted")),
            "{:?}",
            journal.warnings
        );
        // The defaulted records still aggregate.
        let top = aggregate(&journal.records);
        assert_eq!(top.records, 2);

        // A current-version journal loads clean: no warnings.
        let records = vec![record("q1", 1_000, CacheDisposition::Miss)];
        let doc = Json::obj(vec![
            ("schema_version", Json::from(JOURNAL_SCHEMA_VERSION)),
            ("records", Json::Arr(records.iter().map(QueryRecord::to_json).collect())),
        ]);
        let journal = load_journal_lenient(&doc.render()).unwrap();
        assert_eq!(journal.schema_version, JOURNAL_SCHEMA_VERSION);
        assert!(journal.warnings.is_empty(), "{:?}", journal.warnings);
        assert_eq!(journal.records, records);

        // Garbage is still rejected.
        assert!(load_journal_lenient("not json").is_err());
        assert!(load_journal_lenient("{}").is_err());
        assert!(load_journal_lenient(r#"{"records":[42]}"#).is_err());
    }

    #[test]
    fn empty_input_is_an_empty_report() {
        let top = aggregate(&[]);
        assert_eq!(top.records, 0);
        assert!(top.queries.is_empty());
        let rendered = top.render(10, SortBy::default());
        assert!(rendered.contains("0 records"), "{rendered}");
    }
}
