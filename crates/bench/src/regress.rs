//! The bench-regression harness: run the canonical paper queries
//! (company + travel stores) many times through the full
//! normalize → plan → metered-execute pipeline, and report per-query
//! latency percentiles plus the metrics-registry account of the whole
//! workload — per-rule normalization firings, per-operator-kind row
//! totals, store counters, and phase-latency histograms.
//!
//! The `regress` binary serializes the report to `BENCH_regress.json`
//! at the repo root: the first point on the perf trajectory every
//! future PR regresses against — and, with `--compare` (see
//! [`crate::compare`]), the baseline the fresh run is gated on. The
//! report deliberately contains no timestamps — two runs on the same
//! machine diff cleanly — but it does carry a [`HostMeta`] header
//! (logical cores, rustc version, thread-count env), because the
//! parallel section's speedup-<1 numbers are meaningless without
//! knowing how many cores the host had.

use crate::harness::percentile_nanos;
use crate::queries;
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::json::Json;
use monoid_calculus::metrics::{self, validate_prometheus_text, Snapshot};
use monoid_calculus::normalize::{normalize_traced, NormalizeStats};
use monoid_calculus::trace::{Phase, QueryTrace};
use monoid_store::{company, travel, Database, TravelScale};
use std::time::Instant;

/// One canonical query in the regression suite. Shared with the
/// plan-quality audit ([`crate::audit`]) so both gates run over the
/// same corpus.
pub(crate) struct Case {
    pub(crate) name: &'static str,
    pub(crate) store: &'static str,
    /// OQL source, or a paper-notation description for calculus-built
    /// queries.
    pub(crate) source: String,
    pub(crate) expr: Expr,
}

/// What one query did across `runs` executions.
pub struct QueryReport {
    pub name: &'static str,
    pub store: &'static str,
    pub source: String,
    pub runs: usize,
    pub p50_nanos: u128,
    pub p95_nanos: u128,
    pub p99_nanos: u128,
    /// Rows the plan root pushed into the reduction (single run).
    pub rows_to_reduce: u64,
    /// Normalization statistics of a single run (identical every run —
    /// normalization is deterministic).
    pub normalize: NormalizeStats,
    /// Median wall-time of the static analyzer (effect inference + lint)
    /// over the raw translated expression — the cost `oqlint` adds on top
    /// of compilation.
    pub analysis_p50_nanos: u128,
}

/// One thread count's latency for a parallel-bench query.
pub struct ParallelPoint {
    pub threads: usize,
    /// Workers the engine actually spawned (0 when it fell back, e.g.
    /// `threads = 1`).
    pub workers: usize,
    pub p50_nanos: u128,
    pub p95_nanos: u128,
    /// Sequential median ÷ this median, with both medians taken from the
    /// *same interleaved run* (each iteration samples the sequential
    /// baseline and every thread count back to back, so ambient machine
    /// drift hits all series equally). On a single-core host this hovers
    /// around (or below) 1.0 — the point of tracking it per thread count
    /// is the trajectory across machines and PRs, not one absolute number.
    pub speedup_vs_sequential: f64,
}

/// The ordered-parallel-reduction section: one query run at several
/// thread counts against its sequential baseline, plus the fused-vs-
/// plan-walk ablation on one thread (the same linear chains the parallel
/// engine partitions are the ones the fused engine compiles).
pub struct ParallelBench {
    pub name: &'static str,
    pub monoid: &'static str,
    pub source: String,
    /// Sequential median on the default engine (fused, for these cases).
    pub sequential_p50_nanos: u128,
    /// Sequential median with the plan-walk interpreter forced
    /// ([`monoid_algebra::execute_plan_walk`]) — the ablation baseline.
    pub plan_walk_p50_nanos: u128,
    /// Plan-walk median ÷ fused median: what fusion buys on one thread.
    pub fused_speedup: f64,
    /// The engine `execute` routes this query through (`"fused"`).
    pub engine: &'static str,
    pub threads: Vec<ParallelPoint>,
}

/// One prepared statement: the cold path (prepare + execute, the whole
/// parse → translate → normalize → optimize → plan pipeline every run)
/// against the warm path (`Prepared::execute` alone — bind and run the
/// stored plan).
pub struct PreparedBench {
    pub name: &'static str,
    pub source: String,
    pub cold_p50_nanos: u128,
    pub cold_p95_nanos: u128,
    pub warm_p50_nanos: u128,
    pub warm_p95_nanos: u128,
    /// Cold median ÷ warm median: what preparing once buys per execution.
    pub warm_speedup: f64,
}

/// Host facts stamped into the report header: the context that makes
/// latency and speedup numbers interpretable when reports from
/// different machines meet (a speedup below 1.0 reads very differently
/// on one core than on sixteen).
#[derive(Debug, Clone)]
pub struct HostMeta {
    /// `std::thread::available_parallelism()` — what the parallel
    /// engine's `default_threads` sees.
    pub logical_cores: usize,
    /// `rustc --version` output, or `"unknown"` when the compiler is
    /// not on PATH at run time.
    pub rustc: String,
    /// Target OS and architecture, e.g. `linux x86_64`.
    pub os: String,
    /// The `MONOID_PARALLEL_THREADS` override in force, if any.
    pub parallel_threads_env: Option<String>,
}

/// Gather the [`HostMeta`] for this process.
pub fn host_meta() -> HostMeta {
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    HostMeta {
        logical_cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rustc,
        os: format!("{} {}", std::env::consts::OS, std::env::consts::ARCH),
        parallel_threads_env: std::env::var("MONOID_PARALLEL_THREADS").ok(),
    }
}

impl HostMeta {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("logical_cores", Json::from(self.logical_cores)),
            ("rustc", Json::str(self.rustc.clone())),
            ("os", Json::str(self.os.clone())),
            (
                "parallel_threads_env",
                self.parallel_threads_env.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
        ])
    }
}

/// The full regression report.
pub struct RegressReport {
    pub quick: bool,
    /// Whether the prepared section ran against the pre-warmed
    /// process-wide plan cache (`--warm`).
    pub warm: bool,
    pub runs_per_query: usize,
    pub queries: Vec<QueryReport>,
    /// Parallel reduction latencies per thread count (B6-style section).
    pub parallel: Vec<ParallelBench>,
    /// Prepared-statement serving latencies (cold prepare vs warm
    /// execute); the workload also runs through a `Session` + `PlanCache`
    /// so the `plan_cache_*` counters land in the registry delta below.
    pub prepared: Vec<PreparedBench>,
    /// Wire-server throughput: closed-loop queries/second against an
    /// in-process `oqld` at {1, 4, 16, 64} concurrent connections, plus
    /// the cold/warm single-client round trip ([`crate::serving`]).
    pub serving: Vec<crate::serving::ServingBench>,
    /// Registry delta attributable to this workload (snapshot diff
    /// around the run).
    pub registry: Snapshot,
    /// The same delta in Prometheus text format.
    pub prometheus: String,
    /// The host this report was produced on.
    pub host: HostMeta,
}

pub(crate) fn suite(quick: bool) -> (Database, Database, Vec<Case>) {
    let travel_scale = if quick { TravelScale::tiny() } else { TravelScale::small() };
    let travel_db = travel::generate(travel_scale, 7);
    let (managers, reports, floaters) = if quick { (4, 8, 6) } else { (8, 20, 15) };
    let company_db = company::generate(managers, reports, floaters, 42);

    let tschema = travel::schema();
    let cschema = company_db.schema().clone();
    let oql = |schema: &monoid_calculus::types::Schema, src: &str| {
        monoid_oql::compile(schema, src).expect("canonical query compiles")
    };

    let company_join = "select struct(mgr: m.name, emp: e.name) \
                        from m in Managers, e in CompanyEmployees \
                        where m.dept = e.dept";
    let company_forall = "for all e in CompanyEmployees: e.salary >= 40000";
    let cases = vec![
        Case {
            name: "portland-flat",
            store: "travel",
            source: queries::PORTLAND_FLAT_OQL.to_string(),
            expr: oql(&tschema, queries::PORTLAND_FLAT_OQL),
        },
        Case {
            name: "portland-nested",
            store: "travel",
            source: queries::PORTLAND_NESTED_OQL.to_string(),
            expr: oql(&tschema, queries::PORTLAND_NESTED_OQL),
        },
        Case {
            name: "clients-existing-city",
            store: "travel",
            source: "set{ cl.name | cl ← Clients, p ← cl.preferred, some{ c.name = p | c ← Cities } }"
                .to_string(),
            expr: queries::clients_preferring_existing_city(),
        },
        Case {
            name: "exists-hotel",
            store: "travel",
            source: "exists h in Hotels: h.name = 'hotel_0_0'".to_string(),
            expr: oql(&tschema, "exists h in Hotels: h.name = 'hotel_0_0'"),
        },
        Case {
            name: "company-dept-join",
            store: "company",
            source: company_join.to_string(),
            expr: oql(&cschema, company_join),
        },
        Case {
            name: "company-forall-salary",
            store: "company",
            source: company_forall.to_string(),
            expr: oql(&cschema, company_forall),
        },
    ];
    (travel_db, company_db, cases)
}

/// Run the suite. `quick` shrinks stores and run counts for CI smoke.
pub fn run(quick: bool) -> RegressReport {
    run_with(quick, false)
}

/// [`run`], optionally serving the prepared section from the pre-warmed
/// process-wide plan cache (`warm`) instead of a cold private one — CI
/// runs both and diffs the two reports.
pub fn run_with(quick: bool, warm: bool) -> RegressReport {
    let runs = if quick { 5 } else { 25 };
    let (mut travel_db, mut company_db, cases) = suite(quick);
    let before = metrics::global().snapshot();
    let mut reports = Vec::with_capacity(cases.len());
    for case in cases {
        let db = match case.store {
            "travel" => &mut travel_db,
            _ => &mut company_db,
        };
        // One profiled pass for per-operator accounting…
        let analysis =
            monoid_algebra::explain_analyze(&case.expr, db).expect("canonical query executes");
        let rows_to_reduce = analysis.profile.rows_to_reduce;
        let normalize = analysis
            .profile
            .trace
            .normalize
            .clone()
            .expect("explain_analyze always normalizes");
        // …then the timed runs through the metered pipeline, each one
        // exercising normalize → plan → execute end to end.
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let started = Instant::now();
            let mut trace = QueryTrace::new();
            let canonical = trace.time(Phase::Normalize, || {
                let (canonical, _, _) = normalize_traced(&case.expr);
                canonical
            });
            let plan = trace.time(Phase::Plan, || {
                monoid_algebra::plan_comprehension(&canonical).expect("canonical query plans")
            });
            let value = trace.time(Phase::Execute, || {
                monoid_algebra::execute_metered(&plan, db).expect("canonical query executes")
            });
            drop(value);
            samples.push(started.elapsed().as_nanos());
        }
        // The static analyzer's own cost, timed separately: it never
        // runs inside the execute path, so it gets its own series.
        let mut analysis_samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let started = Instant::now();
            let report = monoid_calculus::analysis::AnalysisReport::of(&case.expr);
            std::hint::black_box(&report);
            analysis_samples.push(started.elapsed().as_nanos());
        }
        reports.push(QueryReport {
            name: case.name,
            store: case.store,
            source: case.source,
            runs,
            p50_nanos: percentile_nanos(&samples, 50.0),
            p95_nanos: percentile_nanos(&samples, 95.0),
            p99_nanos: percentile_nanos(&samples, 99.0),
            rows_to_reduce,
            normalize,
            analysis_p50_nanos: percentile_nanos(&analysis_samples, 50.0),
        });
    }
    let parallel = run_parallel_section(quick, runs);
    let prepared = run_prepared_section(quick, runs, warm);
    let serving = crate::serving::run_serving_section(quick);
    let registry = metrics::global().snapshot().diff(&before);
    let prometheus = registry.to_prometheus();
    validate_prometheus_text(&prometheus).expect("exporter emits valid text format");
    RegressReport {
        quick,
        warm,
        runs_per_query: runs,
        queries: reports,
        parallel,
        prepared,
        serving,
        registry,
        prometheus,
        host: host_meta(),
    }
}

/// Time the serving layer: for each canonical statement, the cold path
/// re-prepares (parse → … → plan) and executes every run, the warm path
/// executes one `Prepared` repeatedly. The same statements then go
/// through a private `Session`/`PlanCache` so the run's registry delta
/// carries `plan_cache_hits_total` / `plan_cache_misses_total` traffic.
///
/// Under `warm` the section serves from the pre-warmed process-wide
/// cache instead: every statement is queried once through
/// `Session::new()` before any timing, and the warm loop times whole
/// `session.query` hits (lookup + bind + execute) rather than bare
/// `Prepared::execute` calls.
fn run_prepared_section(quick: bool, runs: usize, warm: bool) -> Vec<PreparedBench> {
    use monoid_calculus::value::Value;
    use monoid_db::{prepare_on, Params, PlanCache, Session};

    let scale = if quick { TravelScale::tiny() } else { TravelScale::small() };
    let mut db = travel::generate(scale, 7);
    let cases: Vec<(&'static str, &'static str, Params)> = vec![
        (
            "portland-flat-prepared",
            "select h.name from c in Cities, h in c.hotels, r in h.rooms \
             where c.name = $city and r.bed# = $beds",
            Params::new()
                .bind("city", Value::str("Portland"))
                .bind("beds", Value::Int(3)),
        ),
        (
            "exists-hotel-prepared",
            "exists h in Hotels: h.name = $name",
            Params::new().bind("name", Value::str("hotel_0_0")),
        ),
        (
            "city-hotels-prepared",
            "select h.name from c in Cities, h in c.hotels \
             where c.hotel# >= $1 and c.name = $2",
            Params::new().bind("1", Value::Int(1)).bind("2", Value::str("Portland")),
        ),
    ];

    let session = if warm {
        Session::new()
    } else {
        Session::with_cache(std::sync::Arc::new(PlanCache::new()))
    };
    if warm {
        // Pre-warm the process-wide cache so every timed lookup below
        // is a hit.
        for (_, source, params) in &cases {
            session.query(&mut db, source, params).expect("pre-warm serves the statement");
        }
    }
    cases
        .into_iter()
        .map(|(name, source, params)| {
            // Cold: the whole pipeline, every run.
            let mut cold = Vec::with_capacity(runs);
            for _ in 0..runs {
                let started = Instant::now();
                let stmt = prepare_on(&db, source).expect("canonical statement prepares");
                stmt.execute(&mut db, &params).expect("canonical statement executes");
                cold.push(started.elapsed().as_nanos());
            }
            let mut warm_samples = Vec::with_capacity(runs);
            if warm {
                // Warm: serve `runs` hits from the pre-warmed cache.
                for _ in 0..runs {
                    let started = Instant::now();
                    session.query(&mut db, source, &params).expect("session serves the statement");
                    warm_samples.push(started.elapsed().as_nanos());
                }
            } else {
                // Warm: prepare once, execute `runs` times.
                let stmt = prepare_on(&db, source).expect("canonical statement prepares");
                for _ in 0..runs {
                    let started = Instant::now();
                    stmt.execute(&mut db, &params).expect("canonical statement executes");
                    warm_samples.push(started.elapsed().as_nanos());
                }
                // Cache traffic for the registry delta: one miss, then hits.
                for _ in 0..runs {
                    session.query(&mut db, source, &params).expect("session serves the statement");
                }
            }
            let cold_p50 = percentile_nanos(&cold, 50.0);
            let warm_p50 = percentile_nanos(&warm_samples, 50.0);
            PreparedBench {
                name,
                source: source.to_string(),
                cold_p50_nanos: cold_p50,
                cold_p95_nanos: percentile_nanos(&cold, 95.0),
                warm_p50_nanos: warm_p50,
                warm_p95_nanos: percentile_nanos(&warm_samples, 95.0),
                warm_speedup: cold_p50 as f64 / warm_p50.max(1) as f64,
            }
        })
        .collect()
}

/// Time the ordered parallel reduction engine at several thread counts —
/// a commutative fold and an order-sensitive list build — against their
/// sequential medians. Runs through [`monoid_algebra::execute_parallel_metered`]
/// so the `parallel_*` registry family (workers, per-worker rows,
/// `parallel_fallback_total{reason}`) lands in the report's Prometheus
/// section.
fn run_parallel_section(quick: bool, runs: usize) -> Vec<ParallelBench> {
    let scale = TravelScale::with_hotels(if quick { 64 } else { 1024 });
    let mut db = travel::generate(scale, 7);
    let thread_counts = [1usize, 2, 4, 8];
    let cases = [
        (
            "sum-beds",
            "sum",
            "sum{ r.bed# | h ← Hotels, r ← h.rooms }",
            Expr::comp(
                Monoid::Sum,
                Expr::var("r").proj("bed#"),
                vec![
                    Expr::gen("h", Expr::var("Hotels")),
                    Expr::gen("r", Expr::var("h").proj("rooms")),
                ],
            ),
        ),
        (
            "list-prices",
            "list",
            "list{ r.price | h ← Hotels, r ← h.rooms }",
            Expr::comp(
                Monoid::List,
                Expr::var("r").proj("price"),
                vec![
                    Expr::gen("h", Expr::var("Hotels")),
                    Expr::gen("r", Expr::var("h").proj("rooms")),
                ],
            ),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, monoid, source, expr)| {
            let plan = monoid_algebra::plan_comprehension(&expr).expect("parallel case plans");
            // One metered pass per thread count: puts the `parallel_*`
            // registry family (workers, per-worker rows, the threads=1
            // fallback series) into the report delta, and doubles as the
            // warm-up. Metered workers walk the plan (the probe counts
            // per-operator rows), so these passes are never timed.
            let workers: Vec<usize> = thread_counts
                .iter()
                .map(|&t| {
                    monoid_algebra::execute_parallel_metered(&plan, &mut db, t)
                        .expect("parallel case executes");
                    let (_, report) = monoid_algebra::execute_parallel_traced(&plan, &mut db, t)
                        .expect("parallel case executes");
                    report.workers
                })
                .collect();
            // Interleaved sampling: each iteration takes one fused
            // sequential sample, one forced-plan-walk sample, and one
            // sample per thread count back to back, so every speedup
            // below compares medians from the same stretch of wall clock
            // instead of a sequential pass taken minutes earlier.
            let mut fused_samples = Vec::with_capacity(runs);
            let mut plan_walk_samples = Vec::with_capacity(runs);
            let mut par_samples: Vec<Vec<u128>> =
                thread_counts.iter().map(|_| Vec::with_capacity(runs)).collect();
            for _ in 0..runs {
                let started = Instant::now();
                monoid_algebra::execute(&plan, &mut db).expect("sequential baseline");
                fused_samples.push(started.elapsed().as_nanos());
                let started = Instant::now();
                monoid_algebra::execute_plan_walk(&plan, &mut db).expect("plan-walk baseline");
                plan_walk_samples.push(started.elapsed().as_nanos());
                for (slot, &t) in par_samples.iter_mut().zip(&thread_counts) {
                    let started = Instant::now();
                    monoid_algebra::execute_parallel(&plan, &mut db, t)
                        .expect("parallel case executes");
                    slot.push(started.elapsed().as_nanos());
                }
            }
            let sequential_p50_nanos = percentile_nanos(&fused_samples, 50.0);
            let plan_walk_p50_nanos = percentile_nanos(&plan_walk_samples, 50.0);
            let threads = thread_counts
                .iter()
                .zip(&workers)
                .zip(&par_samples)
                .map(|((&t, &workers), samples)| {
                    let p50 = percentile_nanos(samples, 50.0);
                    ParallelPoint {
                        threads: t,
                        workers,
                        p50_nanos: p50,
                        p95_nanos: percentile_nanos(samples, 95.0),
                        speedup_vs_sequential: sequential_p50_nanos as f64 / p50.max(1) as f64,
                    }
                })
                .collect();
            ParallelBench {
                name,
                monoid,
                source: source.to_string(),
                sequential_p50_nanos,
                plan_walk_p50_nanos,
                fused_speedup: plan_walk_p50_nanos as f64 / sequential_p50_nanos.max(1) as f64,
                engine: monoid_algebra::engine_of(&plan).as_str(),
                threads,
            }
        })
        .collect()
}

impl RegressReport {
    /// Cumulative rows pushed, by operator kind, from the registry
    /// delta.
    pub fn operator_rows(&self) -> Vec<(String, u64)> {
        self.registry
            .series
            .iter()
            .filter(|s| s.key.name == "exec_rows_pushed_total")
            .filter_map(|s| match s.value {
                metrics::MetricValue::Counter(n) if n > 0 => {
                    s.key.labels.first().map(|(_, kind)| (kind.clone(), n))
                }
                _ => None,
            })
            .collect()
    }

    /// Cumulative rule firings from the registry delta.
    pub fn rule_firings(&self) -> Vec<(String, u64)> {
        self.registry
            .series
            .iter()
            .filter(|s| s.key.name == "normalize_rule_fired_total")
            .filter_map(|s| match s.value {
                metrics::MetricValue::Counter(n) if n > 0 => {
                    s.key.labels.first().map(|(_, rule)| (rule.clone(), n))
                }
                _ => None,
            })
            .collect()
    }

    /// The `BENCH_regress.json` document.
    pub fn to_json(&self) -> Json {
        let queries = Json::Arr(
            self.queries
                .iter()
                .map(|q| {
                    let rules = Json::Arr(
                        q.normalize
                            .rule_counts()
                            .filter(|(_, n)| *n > 0)
                            .map(|(rule, n)| {
                                Json::obj(vec![
                                    ("rule", Json::str(format!("N{}", rule.number()))),
                                    ("name", Json::str(rule.name())),
                                    ("fired", Json::from(n)),
                                ])
                            })
                            .collect(),
                    );
                    Json::obj(vec![
                        ("name", Json::str(q.name)),
                        ("store", Json::str(q.store)),
                        ("source", Json::str(q.source.clone())),
                        ("runs", Json::from(q.runs)),
                        ("median_nanos", Json::from(q.p50_nanos)),
                        ("p50_nanos", Json::from(q.p50_nanos)),
                        ("p95_nanos", Json::from(q.p95_nanos)),
                        ("p99_nanos", Json::from(q.p99_nanos)),
                        ("rows_to_reduce", Json::from(q.rows_to_reduce)),
                        ("analysis_nanos", Json::from(q.analysis_p50_nanos)),
                        (
                            "normalize",
                            Json::obj(vec![
                                ("steps", Json::from(q.normalize.steps)),
                                ("size_before", Json::from(q.normalize.size_before)),
                                ("size_after", Json::from(q.normalize.size_after)),
                                ("rules", rules),
                            ]),
                        ),
                    ])
                })
                .collect(),
        );
        let parallel = Json::Arr(
            self.parallel
                .iter()
                .map(|p| {
                    let threads = Json::Arr(
                        p.threads
                            .iter()
                            .map(|t| {
                                Json::obj(vec![
                                    ("threads", Json::from(t.threads)),
                                    ("workers", Json::from(t.workers)),
                                    ("median_nanos", Json::from(t.p50_nanos)),
                                    ("p95_nanos", Json::from(t.p95_nanos)),
                                    (
                                        "speedup_vs_sequential",
                                        Json::Float(t.speedup_vs_sequential),
                                    ),
                                ])
                            })
                            .collect(),
                    );
                    Json::obj(vec![
                        ("name", Json::str(p.name)),
                        ("monoid", Json::str(p.monoid)),
                        ("source", Json::str(p.source.clone())),
                        ("sequential_median_nanos", Json::from(p.sequential_p50_nanos)),
                        ("fused_median_nanos", Json::from(p.sequential_p50_nanos)),
                        ("plan_walk_median_nanos", Json::from(p.plan_walk_p50_nanos)),
                        ("fused_speedup", Json::Float(p.fused_speedup)),
                        ("engine", Json::str(p.engine)),
                        ("threads", threads),
                    ])
                })
                .collect(),
        );
        let prepared = Json::Arr(
            self.prepared
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("name", Json::str(p.name)),
                        ("source", Json::str(p.source.clone())),
                        ("cold_median_nanos", Json::from(p.cold_p50_nanos)),
                        ("cold_p95_nanos", Json::from(p.cold_p95_nanos)),
                        ("warm_median_nanos", Json::from(p.warm_p50_nanos)),
                        ("warm_p95_nanos", Json::from(p.warm_p95_nanos)),
                        ("warm_speedup", Json::Float(p.warm_speedup)),
                    ])
                })
                .collect(),
        );
        let serving = Json::Arr(self.serving.iter().map(crate::serving::ServingBench::to_json).collect());
        let pairs_json = |pairs: Vec<(String, u64)>| {
            Json::Obj(pairs.into_iter().map(|(k, n)| (k, Json::from(n))).collect())
        };
        Json::obj(vec![
            ("bench", Json::str("regress")),
            // Version 6 added the `serving` section (wire-server
            // throughput + gated warm round trip).
            ("schema_version", Json::Int(6)),
            ("host", self.host.to_json()),
            ("quick", Json::Bool(self.quick)),
            ("warm", Json::Bool(self.warm)),
            ("runs_per_query", Json::from(self.runs_per_query)),
            ("queries", queries),
            ("parallel", parallel),
            ("prepared", prepared),
            ("serving", serving),
            ("operator_rows", pairs_json(self.operator_rows())),
            ("normalize_rules", pairs_json(self.rule_firings())),
            ("registry", self.registry.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_regress_produces_a_complete_report() {
        let report = run(true);
        assert_eq!(report.queries.len(), 6);
        for q in &report.queries {
            assert!(q.p50_nanos > 0, "{} has a latency", q.name);
            assert!(q.p95_nanos >= q.p50_nanos, "{}: p95 ≥ p50", q.name);
            assert!(q.p99_nanos >= q.p95_nanos, "{}: p99 ≥ p95", q.name);
        }
        // The nested Portland query must exercise the unnesting rules.
        let nested = report.queries.iter().find(|q| q.name == "portland-nested").unwrap();
        assert!(nested.normalize.steps > 0, "nested form normalizes");
        // Per-operator rows and per-rule firings made it into the delta.
        assert!(
            report.operator_rows().iter().any(|(k, n)| k == "scan" && *n > 0),
            "scans counted: {:?}",
            report.operator_rows()
        );
        assert!(!report.rule_firings().is_empty(), "rules counted");
        // The Prometheus rendering of the delta is valid text format.
        validate_prometheus_text(&report.prometheus).unwrap();
        assert!(report.prometheus.contains("exec_rows_pushed_total"), "{}", report.prometheus);
        // The parallel section covers both a commutative and an ordered
        // monoid, across the full thread ladder, and its threads=1 runs
        // put the fallback series into the Prometheus exposition.
        assert_eq!(report.parallel.len(), 2);
        for p in &report.parallel {
            assert_eq!(
                p.threads.iter().map(|t| t.threads).collect::<Vec<_>>(),
                vec![1, 2, 4, 8]
            );
            assert_eq!(p.threads[0].workers, 0, "threads=1 falls back");
            assert!(p.threads[2].workers >= 2, "threads=4 fans out");
            for t in &p.threads {
                assert!(t.p50_nanos > 0 && t.speedup_vs_sequential > 0.0);
            }
            // Both cases are linear chains: the default engine is fused,
            // and the forced plan walk was timed alongside it.
            assert_eq!(p.engine, "fused", "{}", p.name);
            assert!(p.plan_walk_p50_nanos > 0 && p.fused_speedup > 0.0, "{}", p.name);
        }
        assert!(
            report.prometheus.contains("parallel_fallback_total{reason=\"single-thread\"}"),
            "{}",
            report.prometheus
        );
        assert!(report.prometheus.contains("parallel_workers_total"), "{}", report.prometheus);
        // The prepared-statement section: every case timed on both paths,
        // and the session loop put plan-cache traffic into the delta —
        // exactly one miss per statement, the rest hits.
        assert_eq!(report.prepared.len(), 3);
        for p in &report.prepared {
            assert!(p.cold_p50_nanos > 0 && p.warm_p50_nanos > 0, "{} timed", p.name);
            assert!(p.warm_speedup > 0.0);
        }
        // The serving section drove a real wire server: both statements
        // timed cold and warm, the full client ladder walked, and every
        // point actually completed its closed loop.
        assert_eq!(report.serving.len(), 2);
        for s in &report.serving {
            assert!(s.cold_first_query_nanos > 0 && s.warm_nanos_per_query > 0, "{}", s.name);
            assert_eq!(
                s.points.iter().map(|p| p.clients).collect::<Vec<_>>(),
                crate::serving::CLIENT_LADDER.to_vec(),
                "{}",
                s.name
            );
            for p in &s.points {
                assert_eq!(p.total_queries, (p.clients * 8) as u64, "{}", s.name);
                assert!(p.queries_per_sec > 0.0, "{}", s.name);
            }
        }
        assert!(
            report.registry.counter("plan_cache_misses_total") >= 3,
            "the session loop and the wire server both miss once per statement"
        );
        assert!(
            report.registry.counter("plan_cache_hits_total")
                >= 3 * (report.runs_per_query as u64 - 1),
            "session loop hits plus wire-server hits"
        );
        assert!(report.prometheus.contains("plan_cache_hits_total"), "{}", report.prometheus);
        // And the JSON document carries the acceptance fields.
        let json = report.to_json().render();
        for key in [
            "\"median_nanos\"",
            "\"p95_nanos\"",
            "\"normalize_rules\"",
            "\"operator_rows\"",
            "\"registry\"",
            "\"rows_to_reduce\"",
            "\"analysis_nanos\"",
            "\"parallel\"",
            "\"speedup_vs_sequential\"",
            "\"fused_median_nanos\"",
            "\"plan_walk_median_nanos\"",
            "\"fused_speedup\"",
            "\"engine\"",
            "\"prepared\"",
            "\"cold_median_nanos\"",
            "\"warm_median_nanos\"",
            "\"warm_speedup\"",
            "\"serving\"",
            "\"warm_nanos_per_query\"",
            "\"queries_per_sec\"",
            "\"host\"",
            "\"logical_cores\"",
            "\"rustc\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(report.host.logical_cores >= 1);
    }
}
